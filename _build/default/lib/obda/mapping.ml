(** The mapping layer: the "semantic correspondence between the unified
    view of the domain and the data stored at the sources" (Section 1).

    A mapping assertion is GAV-style:
    {v  Φ(x⃗)  ⇝  S(x⃗')  v}
    where [Φ] is a conjunctive query over the database schema and [S] a
    named ontology predicate whose argument template uses [Φ]'s
    variables (or constants).  Two operational modes are provided:

    - [unfold]: rewrite an ontology-level UCQ into a database-level UCQ
      (virtual ABox, the production OBDA path);
    - [materialize]: evaluate every mapping and produce the ABox
      explicitly (useful for debugging and for the chase oracle). *)

open Dllite

type head =
  | Concept_head of string * Cq.term                    (** A(t) *)
  | Role_head of string * Cq.term * Cq.term             (** P(t1, t2) *)
  | Attr_head of string * Cq.term * Cq.term             (** U(t, v) *)

type assertion = {
  source : Cq.t;   (** CQ over the database schema; its answer variables
                       are the ones usable in the head template *)
  target : head;
}

type t = assertion list

let head_vars = function
  | Concept_head (_, t) -> [ t ]
  | Role_head (_, t1, t2) | Attr_head (_, t1, t2) -> [ t1; t2 ]

(** [make ~source ~target] checks that every head variable is an answer
    variable of the source query, and that head variables are pairwise
    distinct (the unfolding unifier relies on linear head templates — a
    duplicate can always be expressed with an equality join in the
    source query instead). *)
let make ~source ~target =
  let vars =
    List.filter_map
      (function Cq.Var v -> Some v | Cq.Const _ -> None)
      (head_vars target)
  in
  List.iter
    (fun v ->
      if not (List.mem v source.Cq.answer_vars) then
        invalid_arg
          (Printf.sprintf "Mapping.make: head variable %s not answered by source" v))
    vars;
  if List.length vars <> List.length (List.sort_uniq compare vars) then
    invalid_arg "Mapping.make: head variables must be distinct";
  { source; target }

let target_pred = function
  | Concept_head (a, _) -> Vabox.concept_pred a
  | Role_head (p, _, _) -> Vabox.role_pred p
  | Attr_head (u, _, _) -> Vabox.attr_pred u

let target_args = function
  | Concept_head (_, t) -> [ t ]
  | Role_head (_, t1, t2) | Attr_head (_, t1, t2) -> [ t1; t2 ]

(* ------------------------------------------------------------------ *)
(* Unfolding                                                           *)
(* ------------------------------------------------------------------ *)

let fresh_counter = ref 0

let rename_apart q =
  incr fresh_counter;
  let tag = Printf.sprintf "m%d_" !fresh_counter in
  let subst =
    List.fold_left
      (fun s v -> Cq.Subst.add v (Cq.Var (tag ^ v)) s)
      Cq.Subst.empty (Cq.vars q)
  in
  (Cq.apply subst q, fun t -> Cq.apply_term subst t)

(** [unfold mappings q] rewrites the ontology-level CQ [q] into a
    database-level UCQ: every ontology atom is replaced by the source
    query of a matching mapping (one disjunct per combination).  Atoms
    with no matching mapping kill their disjunct (they can never be
    satisfied by the virtual ABox). *)
let unfold (mappings : t) (q : Cq.t) : Cq.ucq =
  (* per ontology atom: the list of (renamed source body, unifier) *)
  let expansions_of atom =
    List.filter_map
      (fun m ->
        if target_pred m.target <> atom.Cq.pred then None
        else begin
          let renamed_source, rename = rename_apart m.source in
          let head_args = List.map rename (target_args m.target) in
          if List.length head_args <> List.length atom.Cq.args then None
          else
            (* unify head template against the query atom's arguments:
               head variables get bound to query terms; head constants
               must match query constants, and bind query variables *)
            let rec go subst pairs =
              match pairs with
              | [] -> Some subst
              | (Cq.Var hv, qt) :: rest -> (
                match Cq.Subst.find_opt hv subst with
                | Some t when Cq.equal_term t qt -> go subst rest
                | Some _ -> None
                | None -> go (Cq.Subst.add hv qt subst) rest)
              | (Cq.Const hc, Cq.Const qc) :: rest ->
                if hc = qc then go subst rest else None
              | ((Cq.Const _ as hc), (Cq.Var _ as qv)) :: rest ->
                (* query variable forced to the head constant *)
                go subst ((qv, hc) :: rest)
            in
            match go Cq.Subst.empty (List.combine head_args atom.Cq.args) with
            | None -> None
            | Some subst ->
              (* [subst] maps renamed head variables to query terms; it
                 may also map query variables to constants (reverse
                 bindings recorded by flipping the pair) *)
              Some (List.map (Cq.apply_atom subst) renamed_source.Cq.body, subst)
        end)
      mappings
  in
  let rec expand body =
    match body with
    | [] -> [ [] ]
    | atom :: rest ->
      if String.length atom.Cq.pred > 2
         && (String.sub atom.Cq.pred 0 2 = "c$"
             || String.sub atom.Cq.pred 0 2 = "r$"
             || String.sub atom.Cq.pred 0 2 = "a$")
      then
        List.concat_map
          (fun (src_atoms, subst) ->
            (* apply the reverse bindings of this expansion to the rest *)
            let rest' = List.map (Cq.apply_atom subst) rest in
            List.map (fun tail -> src_atoms @ tail) (expand rest'))
          (expansions_of atom)
      else List.map (fun tail -> atom :: tail) (expand rest)
  in
  List.filter_map
    (fun body ->
      (* answer variables must survive the expansion *)
      let candidate = { Cq.answer_vars = q.Cq.answer_vars; Cq.body = body } in
      if
        List.for_all
          (fun v ->
            List.exists
              (fun a -> List.exists (Cq.equal_term (Cq.Var v)) a.Cq.args)
              body)
          q.Cq.answer_vars
      then Some candidate
      else None)
    (expand q.Cq.body)

(** [unfold_ucq mappings ucq] unfolds every disjunct and minimizes. *)
let unfold_ucq mappings ucq =
  Cq.minimize_ucq (List.concat_map (unfold mappings) ucq)

(* ------------------------------------------------------------------ *)
(* Materialization                                                     *)
(* ------------------------------------------------------------------ *)

(** [materialize mappings db] evaluates every mapping over [db] and
    collects the resulting ABox (the explicit virtual ABox). *)
let materialize (mappings : t) db =
  List.fold_left
    (fun abox m ->
      let needed_vars =
        List.filter_map
          (function Cq.Var v -> Some v | Cq.Const _ -> None)
          (target_args m.target)
        |> List.sort_uniq compare
      in
      let proj = { m.source with Cq.answer_vars = needed_vars } in
      let tuples = Cq.evaluate ~facts:(Database.facts db) proj in
      List.fold_left
        (fun abox tuple ->
          let env = List.combine needed_vars tuple in
          let value = function
            | Cq.Const c -> c
            | Cq.Var v -> List.assoc v env
          in
          let assertion =
            match m.target with
            | Concept_head (a, t) -> Abox.Concept_assert (a, value t)
            | Role_head (p, t1, t2) -> Abox.Role_assert (p, value t1, value t2)
            | Attr_head (u, t1, t2) -> Abox.Attr_assert (u, value t1, value t2)
          in
          Abox.add assertion abox)
        abox tuples)
    Abox.empty mappings
