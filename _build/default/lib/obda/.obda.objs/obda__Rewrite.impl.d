lib/obda/rewrite.pp.ml: Array Cq Dllite Hashtbl List Logs Option Printf Queue Quonto Set Signature String Syntax Tbox Vabox
