lib/obda/qparse.pp.ml: Buffer Cq Database Dllite Format Fun List Mapping Signature String Vabox
