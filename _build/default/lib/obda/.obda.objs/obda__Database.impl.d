lib/obda/database.pp.ml: Format Hashtbl List Printf String
