lib/obda/cq.pp.ml: Array Format Hashtbl List Map Option Ppx_deriving_runtime Printf String
