lib/obda/consistency.pp.ml: Cq Dllite List Option Rewrite Syntax Tbox Vabox
