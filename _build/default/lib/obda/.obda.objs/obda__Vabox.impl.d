lib/obda/vabox.pp.ml: Abox Cq Dllite Hashtbl List Option Syntax
