lib/obda/sql.pp.ml: Buffer Cq Database Hashtbl List Printf String
