lib/obda/chase.pp.ml: Abox Cq Dllite Hashtbl List Option Printf Set Stdlib String Syntax Tbox Vabox
