lib/obda/integrity.pp.ml: Constraints Dllite Format Hashtbl List Option Printf String Syntax Vabox
