lib/obda/mapping_analysis.pp.ml: Cq Dllite Format List Mapping Quonto Signature Syntax Tbox
