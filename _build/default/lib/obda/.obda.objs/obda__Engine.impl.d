lib/obda/engine.pp.ml: Abox Consistency Constraints Cq Database Dllite Integrity List Logs Mapping Quonto Rewrite Tbox Vabox
