lib/obda/mapping.pp.ml: Abox Cq Database Dllite List Printf String Vabox
