(** Conjunctive queries and unions thereof.

    One query language serves two levels: queries over the *ontology*
    vocabulary (concept/role/attribute atoms) and queries over the
    *database* schema after mapping unfolding — atoms are just predicate
    names with a term list, and the evaluator runs over any fact source.

    Terms are variables or constants; the classic "unbound" (non-join,
    non-answer) variable of the DL-Lite rewriting literature is any
    variable that occurs exactly once in the query and is not an answer
    variable. *)

type term =
  | Var of string
  | Const of string
[@@deriving eq, ord, show { with_path = false }]

type atom = {
  pred : string;
  args : term list;
}
[@@deriving eq, ord, show { with_path = false }]

type t = {
  answer_vars : string list;  (** distinguished variables, in output order *)
  body : atom list;
}
[@@deriving eq, ord, show { with_path = false }]

(** A union of conjunctive queries; all disjuncts must share the
    answer-variable arity. *)
type ucq = t list

let atom pred args = { pred; args }

(** [make answer_vars body] builds a query after sanity checks: answer
    variables must occur in the body. *)
let make answer_vars body =
  let occurs v =
    List.exists (fun a -> List.exists (equal_term (Var v)) a.args) body
  in
  List.iter
    (fun v ->
      if not (occurs v) then
        invalid_arg (Printf.sprintf "Cq.make: answer variable %s not in body" v))
    answer_vars;
  { answer_vars; body }

(** [vars q] is the list of distinct variables of [q], body order. *)
let vars q =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  List.iter
    (fun a ->
      List.iter
        (function
          | Var v ->
            if not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              acc := v :: !acc
            end
          | Const _ -> ())
        a.args)
    q.body;
  List.rev !acc

(** [occurrences q v] counts how many argument positions hold [v]. *)
let occurrences q v =
  List.fold_left
    (fun n a ->
      n + List.length (List.filter (equal_term (Var v)) a.args))
    0 q.body

(** [is_bound q v] — bound variables are answer variables and join
    variables (occurring more than once); everything else is "unbound"
    in the PerfectRef sense. *)
let is_bound q v = List.mem v q.answer_vars || occurrences q v > 1

(* ------------------------------------------------------------------ *)
(* Substitutions                                                       *)
(* ------------------------------------------------------------------ *)

module Subst = Map.Make (String)

let apply_term subst = function
  | Var v as t -> (match Subst.find_opt v subst with Some t' -> t' | None -> t)
  | Const _ as t -> t

let apply_atom subst a = { a with args = List.map (apply_term subst) a.args }

let apply subst q =
  {
    answer_vars = q.answer_vars;  (* answer vars are never substituted away here *)
    body = List.map (apply_atom subst) q.body;
  }

(* ------------------------------------------------------------------ *)
(* Homomorphisms and containment                                       *)
(* ------------------------------------------------------------------ *)

(* Extend [subst] so that [apply_term subst t1 = t2]; [None] on clash. *)
let match_term subst t1 t2 =
  match t1 with
  | Const c1 -> (match t2 with Const c2 when c1 = c2 -> Some subst | _ -> None)
  | Var v -> (
    match Subst.find_opt v subst with
    | Some t when equal_term t t2 -> Some subst
    | Some _ -> None
    | None -> Some (Subst.add v t2 subst))

let match_atom subst a1 a2 =
  if a1.pred <> a2.pred || List.length a1.args <> List.length a2.args then None
  else
    List.fold_left2
      (fun acc t1 t2 -> match acc with None -> None | Some s -> match_term s t1 t2)
      (Some subst) a1.args a2.args

(** [homomorphism q1 q2] finds a homomorphism from [q1]'s body into
    [q2]'s body that maps [q1]'s answer tuple onto [q2]'s answer tuple —
    the witness for [q2 ⊆ q1] once [q2] is frozen. *)
let homomorphism q1 q2 =
  if List.length q1.answer_vars <> List.length q2.answer_vars then None
  else
    let init =
      List.fold_left2
        (fun s v1 v2 -> Subst.add v1 (Var v2) s)
        Subst.empty q1.answer_vars q2.answer_vars
    in
    let rec go subst = function
      | [] -> Some subst
      | a :: rest ->
        List.find_map
          (fun b ->
            match match_atom subst a b with
            | Some subst' -> go subst' rest
            | None -> None)
          q2.body
    in
    go init q1.body

(** [contains q1 q2] — [q2 ⊆ q1] as queries (every answer of [q2] is an
    answer of [q1]), decided by homomorphism from [q1] into [q2] with
    [q2]'s variables frozen as constants. *)
let contains q1 q2 =
  let freeze q =
    let fv = List.map (fun v -> (v, Const ("?" ^ v))) (vars q) in
    let subst = List.fold_left (fun s (v, t) -> Subst.add v t s) Subst.empty fv in
    {
      answer_vars = [];
      body = List.map (apply_atom subst) q.body;
    }
  in
  let frozen = freeze q2 in
  (* answer-variable correspondence: map q1's answer vars to q2's frozen
     answer terms *)
  if List.length q1.answer_vars <> List.length q2.answer_vars then false
  else
    let init =
      List.fold_left2
        (fun s v1 v2 -> Subst.add v1 (Const ("?" ^ v2)) s)
        Subst.empty q1.answer_vars q2.answer_vars
    in
    let rec go subst = function
      | [] -> true
      | a :: rest ->
        List.exists
          (fun b ->
            match match_atom subst a b with
            | Some subst' -> go subst' rest
            | None -> false)
          frozen.body
    in
    go init q1.body

(** [minimize_ucq ucq] removes disjuncts contained in another disjunct
    (keeping the first of two equivalent ones) — the standard final step
    of PerfectRef, without which rewritings explode. *)
let minimize_ucq ucq =
  let arr = Array.of_list ucq in
  let n = Array.length arr in
  let dropped = Array.make n false in
  for i = 0 to n - 1 do
    let redundant =
      (* an earlier kept disjunct already covers i (this also picks one
         representative of each equivalence class) ... *)
      (let found = ref false in
       for j = 0 to i - 1 do
         if (not !found) && (not dropped.(j)) && contains arr.(j) arr.(i) then
           found := true
       done;
       !found)
      ||
      (* ... or a later disjunct covers i strictly *)
      let found = ref false in
      for j = i + 1 to n - 1 do
        if (not !found) && contains arr.(j) arr.(i) && not (contains arr.(i) arr.(j))
        then found := true
      done;
      !found
    in
    dropped.(i) <- redundant
  done;
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if not dropped.(i) then acc := arr.(i) :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(** [evaluate ~facts q] computes the answer tuples of [q] over the fact
    source [facts : pred -> string list list] by backtracking joins.
    When an atom has an argument already bound (a constant, or a join
    variable bound by an earlier atom), candidate rows come from a
    lazily built hash index on that column instead of a full relation
    scan — the difference between quadratic and near-linear joins on
    OBDA-sized data.  Duplicate answers are removed; tuple order is
    unspecified. *)
let evaluate ~facts q =
  let results = Hashtbl.create 16 in
  (* (pred, column) -> value -> rows; built on first use *)
  let indexes = Hashtbl.create 8 in
  let column_index pred i =
    match Hashtbl.find_opt indexes (pred, i) with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun row ->
          match List.nth_opt row i with
          | Some key ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
            Hashtbl.replace tbl key (row :: prev)
          | None -> ())
        (facts pred);
      Hashtbl.add indexes (pred, i) tbl;
      tbl
  in
  let candidates subst a =
    let rec first_bound i = function
      | [] -> None
      | t :: rest -> (
        match apply_term subst t with
        | Const c -> Some (i, c)
        | Var _ -> first_bound (i + 1) rest)
    in
    match first_bound 0 a.args with
    | None -> facts a.pred
    | Some (i, c) ->
      Option.value ~default:[] (Hashtbl.find_opt (column_index a.pred i) c)
  in
  let rec go subst = function
    | [] ->
      let tuple =
        List.map
          (fun v ->
            match Subst.find_opt v subst with
            | Some (Const c) -> c
            | Some (Var _) | None ->
              invalid_arg "Cq.evaluate: unbound answer variable")
          q.answer_vars
      in
      Hashtbl.replace results tuple ()
    | a :: rest ->
      List.iter
        (fun row ->
          if List.length row = List.length a.args then
            let matched =
              List.fold_left2
                (fun acc t v ->
                  match acc with
                  | None -> None
                  | Some s -> match_term s t (Const v))
                (Some subst) a.args row
            in
            match matched with Some s -> go s rest | None -> ())
        (candidates subst a)
  in
  go Subst.empty q.body;
  Hashtbl.fold (fun tuple () acc -> tuple :: acc) results []

(** [evaluate_ucq ~facts ucq] is the deduplicated union of the disjunct
    answers. *)
let evaluate_ucq ~facts ucq =
  let results = Hashtbl.create 16 in
  List.iter
    (fun q -> List.iter (fun t -> Hashtbl.replace results t ()) (evaluate ~facts q))
    ucq;
  Hashtbl.fold (fun t () acc -> t :: acc) results []

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_term_ascii fmt = function
  | Var v -> Format.fprintf fmt "?%s" v
  | Const c -> Format.pp_print_string fmt c

let pp_atom_ascii fmt a =
  Format.fprintf fmt "%s(%a)" a.pred
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_term_ascii)
    a.args

let pp_ascii fmt q =
  Format.fprintf fmt "q(%s) :- %a"
    (String.concat ", " (List.map (fun v -> "?" ^ v) q.answer_vars))
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_atom_ascii)
    q.body

let to_string q = Format.asprintf "%a" pp_ascii q
