(** Data-level integrity checking of functionality and identification
    constraints over the (virtual) ABox.

    Unlike the negative-inclusion consistency check ([Consistency]),
    these constraints are *epistemic*: they are evaluated against the
    retrieved facts only (the Mastro treatment of DL-Lite_A
    constraints), so no query rewriting is involved — functional roles
    are not specializable by well-formedness, and labelled nulls
    invented by existentials are fresh and cannot collide with data. *)

open Dllite

type violation = {
  constraint_ : Constraints.t;
  witness : string;          (** the individual violating the constraint *)
  values : string list;      (** the conflicting fillers *)
}

let role_pairs ~facts q =
  match q with
  | Syntax.Direct p -> List.map (function
      | [ a; b ] -> (a, b)
      | row -> invalid_arg (Printf.sprintf "bad role row arity %d" (List.length row)))
      (facts (Vabox.role_pred p))
  | Syntax.Inverse p -> List.map (function
      | [ a; b ] -> (b, a)
      | row -> invalid_arg (Printf.sprintf "bad role row arity %d" (List.length row)))
      (facts (Vabox.role_pred p))

let group_by_first pairs =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt table a) in
      if not (List.mem b prev) then Hashtbl.replace table a (b :: prev))
    pairs;
  table

let check_funct_role ~facts q constraint_ =
  let by_subject = group_by_first (role_pairs ~facts q) in
  Hashtbl.fold
    (fun subject fillers acc ->
      match fillers with
      | [] | [ _ ] -> acc
      | _ -> { constraint_; witness = subject; values = List.sort compare fillers } :: acc)
    by_subject []

let check_funct_attr ~facts u constraint_ =
  let pairs =
    List.map (function
        | [ a; b ] -> (a, b)
        | _ -> invalid_arg "bad attr row arity")
      (facts (Vabox.attr_pred u))
  in
  let by_subject = group_by_first pairs in
  Hashtbl.fold
    (fun subject values acc ->
      match values with
      | [] | [ _ ] -> acc
      | _ -> { constraint_; witness = subject; values = List.sort compare values } :: acc)
    by_subject []

(* Identification: two distinct instances of B that share a filler on
   every path violate (id B Q1..Qn).  This is the "local" reading over
   retrieved facts. *)
let check_identification ~facts b paths constraint_ =
  let members = List.map (function
      | [ a ] -> a
      | _ -> invalid_arg "bad concept row arity")
      (facts (Vabox.concept_pred b))
  in
  let fillers_along q =
    let table = group_by_first (role_pairs ~facts q) in
    fun x -> Option.value ~default:[] (Hashtbl.find_opt table x)
  in
  let path_fillers = List.map fillers_along paths in
  let agree x y =
    List.for_all
      (fun fillers ->
        let fx = fillers x and fy = fillers y in
        List.exists (fun v -> List.mem v fy) fx)
      path_fillers
  in
  let rec scan acc = function
    | [] -> acc
    | x :: rest ->
      let clashes = List.filter (fun y -> y <> x && agree x y) rest in
      let acc =
        List.fold_left
          (fun acc y -> { constraint_; witness = x; values = [ y ] } :: acc)
          acc clashes
      in
      scan acc rest
  in
  scan [] (List.sort_uniq compare members)

(** [check ~facts constraints] evaluates every constraint; [] means the
    data satisfies them all. *)
let check ~facts constraints =
  List.concat_map
    (fun c ->
      match c with
      | Constraints.Funct_role q -> check_funct_role ~facts q c
      | Constraints.Funct_attr u -> check_funct_attr ~facts u c
      | Constraints.Identification (b, paths) -> check_identification ~facts b paths c)
    constraints

(** [satisfied ~facts constraints] — boolean form. *)
let satisfied ~facts constraints = check ~facts constraints = []

let pp_violation fmt v =
  Format.fprintf fmt "%s violated by %s (conflicting: %s)"
    (Constraints.to_string v.constraint_)
    v.witness
    (String.concat ", " v.values)
