(** Static analysis of a mapping specification against its ontology —
    the "mapping management" service of Mastro (Section 2).  Three
    checks an OBDA engineer runs before deploying:

    - *incoherence*: a mapping feeds an unsatisfiable predicate — every
      tuple it retrieves makes the KB inconsistent;
    - *redundancy*: a mapping's retrieved facts are already produced by
      another mapping for the same predicate (source containment);
    - *unmapped vocabulary*: ontology names no mapping ever populates —
      queries over them can only be answered through TBox inferences,
      which is worth a warning in reviews. *)

open Dllite

type issue =
  | Maps_unsat_predicate of int * string
      (** mapping index, predicate name: the target is unsatisfiable *)
  | Redundant of int * int
      (** mapping [i] is subsumed by mapping [j] (same target shape,
          source of [j] contains source of [i]) *)
  | Unmapped of Syntax.expr
      (** a signature name no mapping populates *)

let pp_issue fmt = function
  | Maps_unsat_predicate (i, name) ->
    Format.fprintf fmt "mapping #%d populates unsatisfiable predicate %s" i name
  | Redundant (i, j) -> Format.fprintf fmt "mapping #%d is subsumed by mapping #%d" i j
  | Unmapped e ->
    Format.fprintf fmt "no mapping populates %s" (Syntax.expr_to_string e)

let target_name m =
  match m.Mapping.target with
  | Mapping.Concept_head (a, _) -> Syntax.E_concept (Syntax.Atomic a)
  | Mapping.Role_head (p, _, _) -> Syntax.E_role (Syntax.Direct p)
  | Mapping.Attr_head (u, _, _) -> Syntax.E_attr u

(* For redundancy: normalize a mapping into a source query whose answer
   tuple is exactly the head argument tuple; then containment of these
   queries is containment of the produced fact sets. *)
let normalized_source m =
  let args = Mapping.target_args m.Mapping.target in
  (* constants in the head make the comparison positional: introduce a
     fresh variable constrained by an artificial equality atom is
     overkill here — mappings with head constants are just excluded from
     the redundancy check *)
  let vars =
    List.filter_map (function Cq.Var v -> Some v | Cq.Const _ -> None) args
  in
  if List.length vars <> List.length args then None
  else Some { m.Mapping.source with Cq.answer_vars = vars }

(** [analyze ?classification tbox mappings] — the issue report.  Pass a
    precomputed classification to avoid re-running it. *)
let analyze ?classification tbox (mappings : Mapping.t) =
  let cls =
    match classification with Some c -> c | None -> Quonto.Classify.classify tbox
  in
  let issues = ref [] in
  (* 1. incoherent targets *)
  List.iteri
    (fun i m ->
      let e = target_name m in
      if Quonto.Classify.is_unsat cls e then
        issues := Maps_unsat_predicate (i, Syntax.expr_to_string e) :: !issues)
    mappings;
  (* 2. redundancy *)
  let indexed = List.mapi (fun i m -> (i, m)) mappings in
  List.iter
    (fun (i, mi) ->
      List.iter
        (fun (j, mj) ->
          if i <> j && Syntax.equal_expr (target_name mi) (target_name mj) then
            match normalized_source mi, normalized_source mj with
            | Some qi, Some qj ->
              (* mi redundant if qj contains qi; break ties by index so a
                 mutually-equivalent pair reports only the later one *)
              if Cq.contains qj qi && ((not (Cq.contains qi qj)) || i > j) then
                issues := Redundant (i, j) :: !issues
            | _ -> ())
        indexed)
    indexed;
  (* 3. unmapped vocabulary *)
  let signature = Tbox.signature tbox in
  let mapped = List.map target_name mappings in
  let check e = if not (List.exists (Syntax.equal_expr e) mapped) then
      issues := Unmapped e :: !issues
  in
  List.iter (fun a -> check (Syntax.E_concept (Syntax.Atomic a))) (Signature.concepts signature);
  List.iter (fun p -> check (Syntax.E_role (Syntax.Direct p))) (Signature.roles signature);
  List.iter (fun u -> check (Syntax.E_attr u)) (Signature.attributes signature);
  List.rev !issues

(** [errors issues] — the subset that makes deployment unsafe (unsat
    targets); redundancy and unmapped names are warnings. *)
let errors issues =
  List.filter (function Maps_unsat_predicate _ -> true | _ -> false) issues
