(** The OBDA engine: ties ontology, mappings and database into the
    query-answering service of Section 1 — "query answering can be
    enriched by exploiting the constraints that can be expressed by the
    ontology".

    The certain-answers pipeline is the textbook one:
    {v  UCQ over ontology --(PerfectRef)--> UCQ over virtual ABox
        --(mapping unfolding)--> UCQ over database --(evaluate)--> answers  v}

    A materialized-ABox mode short-circuits the mapping layer for
    standalone (database-less) knowledge bases. *)

open Dllite

let log_src = Logs.Src.create "obda.engine" ~doc:"OBDA query answering"

module Log = (val Logs.src_log log_src : Logs.LOG)

type rewriting_mode =
  | Perfect_ref  (** vanilla PerfectRef over told axioms *)
  | Presto       (** classification-aided rule base (ablation A4) *)

type t = {
  tbox : Tbox.t;
  mappings : Mapping.t;
  database : Database.t;
  mode : rewriting_mode;
  constraints : Constraints.t list;
      (* functionality / identification constraints, checked at the
         data level (see [Integrity]) *)
}

(** [create ?mode ?constraints ~tbox ~mappings ~database ()] assembles a
    system.  @raise Invalid_argument when the constraints violate the
    DL-Lite_A admissibility condition w.r.t. [tbox]. *)
let create ?(mode = Perfect_ref) ?(constraints = []) ~tbox ~mappings ~database () =
  (match Constraints.well_formed tbox constraints with
   | [] -> ()
   | v :: _ -> invalid_arg ("Engine.create: " ^ v.Constraints.reason));
  { tbox; mappings; database; mode; constraints }

(** [of_abox ?mode tbox abox] wraps a materialized ABox as a degenerate
    OBDA system: one identity-style mapping per named predicate is not
    even needed — the ABox is loaded as ontology-level relations in a
    private database and queried directly. *)
let of_abox ?(mode = Perfect_ref) tbox abox =
  let database = Database.create () in
  List.iter
    (function
      | Abox.Concept_assert (a, c) -> Database.insert database (Vabox.concept_pred a) [ c ]
      | Abox.Role_assert (p, c1, c2) ->
        Database.insert database (Vabox.role_pred p) [ c1; c2 ]
      | Abox.Attr_assert (u, c, v) ->
        Database.insert database (Vabox.attr_pred u) [ c; v ])
    (Abox.assertions abox);
  { tbox; mappings = []; database; mode; constraints = [] }

let rewrite t ucq =
  match t.mode with
  | Perfect_ref -> Rewrite.perfect_ref t.tbox ucq
  | Presto -> Rewrite.presto_ref t.tbox ucq

(** [ontology_facts t] is the fact source seen at the ontology level:
    through the mappings when present, directly from the database
    otherwise (the [of_abox] case loads ontology predicates into the
    database under their [Vabox] names). *)
let ontology_facts t =
  if t.mappings = [] then Database.facts t.database
  else Vabox.facts_of_abox (Mapping.materialize t.mappings t.database)

(** [certain_answers t q] — the full pipeline.  With mappings installed
    the rewriting is *unfolded* and evaluated over the raw database;
    without, it is evaluated over the loaded ABox relations. *)
let certain_answers t q =
  let rewritten, stats = rewrite t [ q ] in
  Log.debug (fun m ->
      m "certain_answers: rewriting has %d disjuncts" stats.Rewrite.output_size);
  if t.mappings = [] then
    Cq.evaluate_ucq ~facts:(Database.facts t.database) rewritten
  else begin
    let unfolded = Mapping.unfold_ucq t.mappings rewritten in
    Log.debug (fun m ->
        m "certain_answers: %d disjuncts after unfolding" (List.length unfolded));
    Cq.evaluate_ucq ~facts:(Database.facts t.database) unfolded
  end

(** [certain_answers_ucq t ucq] — same for a union query. *)
let certain_answers_ucq t ucq =
  let rewritten, _stats = rewrite t ucq in
  if t.mappings = [] then
    Cq.evaluate_ucq ~facts:(Database.facts t.database) rewritten
  else
    Cq.evaluate_ucq ~facts:(Database.facts t.database)
      (Mapping.unfold_ucq t.mappings rewritten)

(** [consistent t] — KB consistency via rewritten violation queries. *)
let consistent t = Consistency.consistent t.tbox ~facts:(ontology_facts t)

(** [violations t] — the full violation report. *)
let violations t = Consistency.check t.tbox ~facts:(ontology_facts t)

(** [integrity_violations t] — functionality / identification
    violations over the retrieved facts (empty when no constraints are
    installed). *)
let integrity_violations t = Integrity.check ~facts:(ontology_facts t) t.constraints

(** [classification t] — intensional service pass-through: the ontology
    engineer's design-quality check runs on the same system handle. *)
let classification t = Quonto.Classify.classify t.tbox
