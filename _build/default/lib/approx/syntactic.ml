(** Syntactic approximation of an expressive (ALCHI) ontology into
    DL-Lite_R (Section 7).

    "Common syntactic approximations only consider the syntactic form of
    the axioms ..., disregarding those axioms which are not compliant
    with the syntax of the [target] ontology language."  We implement
    the usual recursive decomposition:

    - right-hand conjunctions split: [B ⊑ C ⊓ D ⇒ B ⊑ C, B ⊑ D];
    - left-hand disjunctions split: [C ⊔ D ⊑ E ⇒ C ⊑ E, D ⊑ E];
    - compliant pieces are kept, everything else is *dropped* and
      reported.

    As the paper notes, this is fast but guarantees neither soundness in
    general (we restrict to transformations that are entailed, so *this*
    implementation is sound) nor completeness — the [dropped] report
    makes the loss explicit, and ablation A5 quantifies it against the
    semantic approximation. *)

open Dllite
module O = Owlfrag.Osyntax

type report = {
  tbox : Tbox.t;
  kept : int;          (** DL-Lite axioms produced *)
  dropped : O.axiom list;  (** axioms (or residues) beyond DL-Lite *)
}

(* Try to read an ALCHI concept as a DL-Lite basic concept. *)
let as_basic = function
  | O.Name a -> Some (Syntax.Atomic a)
  | O.Some_ (O.Named p, O.Top) -> Some (Syntax.Exists (Syntax.Direct p))
  | O.Some_ (O.Inv p, O.Top) -> Some (Syntax.Exists (Syntax.Inverse p))
  | _ -> None

let as_role = function
  | O.Named p -> Syntax.Direct p
  | O.Inv p -> Syntax.Inverse p

(* Translate one [lhs ⊑ rhs] pair into DL-Lite axioms plus residue.
   [lhs] is already a DL-Lite basic concept. *)
let rec translate_rhs b rhs : Syntax.axiom list * O.concept list =
  match rhs with
  | O.Top -> ([], [])  (* trivially true *)
  | O.And (c, d) ->
    let a1, r1 = translate_rhs b c in
    let a2, r2 = translate_rhs b d in
    (a1 @ a2, r1 @ r2)
  | O.Name a -> ([ Syntax.Concept_incl (b, Syntax.C_basic (Syntax.Atomic a)) ], [])
  | O.Some_ (r, O.Top) ->
    ([ Syntax.Concept_incl (b, Syntax.C_basic (Syntax.Exists (as_role r))) ], [])
  | O.Some_ (r, O.Name a) ->
    ([ Syntax.Concept_incl (b, Syntax.C_exists_qual (as_role r, a)) ], [])
  | O.Not c -> (
    match as_basic c with
    | Some b' -> ([ Syntax.Concept_incl (b, Syntax.C_neg b') ], [])
    | None -> ([], [ rhs ]))
  | O.Bot ->
    (* B ⊑ ⊥: expressible as B ⊑ ¬B in DL-Lite *)
    ([ Syntax.Concept_incl (b, Syntax.C_neg b) ], [])
  | O.Or _ | O.All _ | O.Some_ (_, _) -> ([], [ rhs ])

(* Split a left-hand side into basic-concept disjuncts where possible. *)
and split_lhs lhs : Syntax.basic list option =
  match lhs with
  | O.Or (c, d) -> (
    match split_lhs c, split_lhs d with
    | Some bs1, Some bs2 -> Some (bs1 @ bs2)
    | _ -> None)
  | c -> ( match as_basic c with Some b -> Some [ b ] | None -> None)

(** [approximate otbox] — the syntactic approximation with its loss
    report. *)
let approximate (otbox : O.tbox) =
  let axioms = ref [] in
  let dropped = ref [] in
  let handle_sub lhs rhs =
    match split_lhs lhs with
    | None -> dropped := O.Sub (lhs, rhs) :: !dropped
    | Some bs ->
      List.iter
        (fun b ->
          let kept, residues = translate_rhs b rhs in
          axioms := kept @ !axioms;
          List.iter (fun residue -> dropped := O.Sub (lhs, residue) :: !dropped) residues)
        bs
  in
  List.iter
    (function
      | O.Sub (c, d) -> handle_sub c d
      | O.Equiv (c, d) ->
        handle_sub c d;
        handle_sub d c
      | O.Role_sub (r, s) ->
        axioms := Syntax.Role_incl (as_role r, Syntax.R_role (as_role s)) :: !axioms
      | O.Role_disjoint (r, s) ->
        axioms := Syntax.Role_incl (as_role r, Syntax.R_neg (as_role s)) :: !axioms)
    otbox;
  let tbox = Tbox.of_axioms (List.rev !axioms) in
  { tbox; kept = Tbox.axiom_count tbox; dropped = List.rev !dropped }
