lib/approx/syntactic.ml: Dllite List Owlfrag Syntax Tbox
