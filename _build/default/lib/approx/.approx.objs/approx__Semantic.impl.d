lib/approx/semantic.ml: Dllite List Owlfrag Quonto Syntax Tbox
