(** Semantic approximation of an expressive (ALCHI) ontology into
    DL-Lite_R — the approach of Section 7: "treat each OWL axiom α of
    the original ontology in isolation, and compute, through the use of
    an OWL reasoner, all DL-Lite axioms constructible over the signature
    of α that are inferred by α".

    Candidates over a signature [(concepts, roles)]: every well-formed
    DL-Lite_R inclusion whose sides are built from those names.  Each
    candidate is tested with the tableau; entailed candidates make up
    the approximation.  This is sound by construction, and complete
    w.r.t. single-axiom entailment (the [Global] mode trades speed for
    completeness w.r.t. whole-ontology entailment — ablation A5). *)

open Dllite
module O = Owlfrag.Osyntax
module Tableau = Owlfrag.Tableau

type mode =
  | Per_axiom  (** the paper's proposal: candidates checked against each
                   axiom in isolation — fast, possibly incomplete across
                   axiom interactions *)
  | Global     (** candidates checked against the whole ontology —
                   slower, complete over the candidate language *)

type report = {
  tbox : Tbox.t;
  candidates_tested : int;
  entailment_checks : int;
  budget_exhaustions : int;
      (** candidates conservatively dropped because their tableau check
          hit the budget — when non-zero the result may be less complete
          than the mode promises *)
}

let basic_candidates concepts roles =
  List.map (fun a -> Syntax.Atomic a) concepts
  @ List.concat_map
      (fun p -> [ Syntax.Exists (Syntax.Direct p); Syntax.Exists (Syntax.Inverse p) ])
      roles

let role_candidates roles =
  List.concat_map (fun p -> [ Syntax.Direct p; Syntax.Inverse p ]) roles

(* All candidate DL-Lite axioms over a small signature. *)
let candidate_axioms concepts roles =
  let basics = basic_candidates concepts roles in
  let role_cs = role_candidates roles in
  let concept_axioms =
    List.concat_map
      (fun b1 ->
        List.concat_map
          (fun b2 ->
            if Syntax.equal_basic b1 b2 then
              [ Syntax.Concept_incl (b1, Syntax.C_neg b2) ]  (* B ⊑ ¬B = emptiness *)
            else
              [
                Syntax.Concept_incl (b1, Syntax.C_basic b2);
                Syntax.Concept_incl (b1, Syntax.C_neg b2);
              ])
          basics)
      basics
  in
  let qualified_axioms =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun q -> List.map (fun a -> Syntax.Concept_incl (b, Syntax.C_exists_qual (q, a))) concepts)
          role_cs)
      basics
  in
  let role_axioms =
    List.concat_map
      (fun q1 ->
        List.concat_map
          (fun q2 ->
            if Syntax.equal_role q1 q2 then []
            else
              [
                Syntax.Role_incl (q1, Syntax.R_role q2);
                Syntax.Role_incl (q1, Syntax.R_neg q2);
              ])
          role_cs)
      role_cs
  in
  concept_axioms @ qualified_axioms @ role_axioms

(** [approximate ?budget ?mode otbox] computes the semantic
    approximation.  [budget] bounds each tableau call (candidates whose
    check exhausts it are conservatively *dropped*, preserving
    soundness). *)
let approximate ?(budget = 100_000) ?(mode = Per_axiom) (otbox : O.tbox) =
  let tested = ref 0 in
  let checks = ref 0 in
  let exhausted = ref 0 in
  let oracle_for source =
    {
      Owlfrag.Oracle.config = Tableau.compile source;
      Owlfrag.Oracle.hierarchy = Owlfrag.Hierarchy.build source;
    }
  in
  let entailed_by oracle candidate =
    incr checks;
    match Owlfrag.Oracle.entails ~budget oracle candidate with
    | b -> b
    | exception Tableau.Budget_exhausted ->
      incr exhausted;
      false
  in
  let axioms =
    match mode with
    | Per_axiom ->
      List.concat_map
        (fun ax ->
          let concepts, roles = O.axiom_signature ax in
          let candidates = candidate_axioms concepts roles in
          tested := !tested + List.length candidates;
          let oracle = oracle_for [ ax ] in
          List.filter (entailed_by oracle) candidates)
        otbox
    | Global ->
      let concepts, roles = O.tbox_signature otbox in
      let candidates = candidate_axioms concepts roles in
      tested := !tested + List.length candidates;
      let oracle = oracle_for otbox in
      List.filter (entailed_by oracle) candidates
  in
  (* keep only informative axioms: drop tautologies like B ⊑ B *)
  let informative = function
    | Syntax.Concept_incl (b, Syntax.C_basic b') -> not (Syntax.equal_basic b b')
    | Syntax.Role_incl (q, Syntax.R_role q') -> not (Syntax.equal_role q q')
    | _ -> true
  in
  {
    tbox = Tbox.of_axioms (List.filter informative axioms);
    candidates_tested = !tested;
    entailment_checks = !checks;
    budget_exhaustions = !exhausted;
  }

(** [entailment_recovery ~source ~approx] — evaluation helper for
    ablation A5: the fraction of the [Global]-mode approximation's
    axioms already entailed by [approx] (1.0 = nothing lost w.r.t. the
    candidate language). *)
let entailment_recovery ~(source : O.tbox) ~(approx : Tbox.t) =
  let reference = approximate ~mode:Global source in
  let target = Quonto.Deductive.compute approx in
  let reference_axioms = Tbox.axioms reference.tbox in
  match reference_axioms with
  | [] -> 1.0
  | _ ->
    let recovered =
      List.length (List.filter (Quonto.Deductive.entails target) reference_axioms)
    in
    float_of_int recovered /. float_of_int (List.length reference_axioms)
