(* The Section-7 pipeline: an expressive (ALCHI) ontology is
   approximated into DL-Lite both syntactically and semantically, the
   results are compared on speed and on preserved entailments, and the
   semantic approximation is classified with the digraph method —
   exactly the "refinement of axioms for OBDA aims" step of the
   Section-3 workflow.

   Run with:  dune exec examples/approximation_pipeline.exe *)

module O = Owlfrag.Osyntax
open Dllite

(* A designer-authored expressive ontology: the kind of OWL modelling
   (conjunction, disjunction, value restrictions) that must be
   approximated before OBDA can use it. *)
let expressive : O.tbox =
  [
    (* an employee is a person with an employer *)
    O.Equiv
      ( O.Name "Employee",
        O.And (O.Name "Person", O.Some_ (O.Named "worksFor", O.Top)) );
    (* managers head some team, and whatever they head is a team *)
    O.Sub (O.Name "Manager", O.Some_ (O.Named "heads", O.Name "Team"));
    O.Sub (O.Some_ (O.Named "heads", O.Top), O.All (O.Named "heads", O.Name "Team"));
    (* staff are executives or workers; both are employees *)
    O.Sub (O.Name "Staff", O.Or (O.Name "Executive", O.Name "Worker"));
    O.Sub (O.Name "Executive", O.Name "Employee");
    O.Sub (O.Name "Worker", O.Name "Employee");
    (* org structure *)
    O.Role_sub (O.Named "heads", O.Named "worksFor");
    O.Sub (O.Some_ (O.Named "worksFor", O.Top), O.Name "Person");
    O.Sub (O.Some_ (O.Inv "worksFor", O.Top), O.Name "Organization");
    O.Sub (O.Name "Person", O.Not (O.Name "Organization"));
  ]

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let () =
  Format.printf "expressive source: %d ALCHI axioms@.@." (List.length expressive);

  (* 1. syntactic approximation *)
  let syn, syn_time = time (fun () -> Approx.Syntactic.approximate expressive) in
  Format.printf "== syntactic approximation (%.4fs) ==@." syn_time;
  Format.printf "  kept %d DL-Lite axioms, dropped %d residues:@."
    syn.Approx.Syntactic.kept
    (List.length syn.Approx.Syntactic.dropped);
  List.iter
    (fun ax -> Format.printf "    dropped: %a@." O.pp_axiom ax)
    syn.Approx.Syntactic.dropped;
  Format.printf "@.";

  (* 2. semantic approximation, per-axiom (the paper's proposal) *)
  let sem, sem_time =
    time (fun () -> Approx.Semantic.approximate ~mode:Approx.Semantic.Per_axiom expressive)
  in
  Format.printf "== semantic approximation, per-axiom (%.4fs) ==@." sem_time;
  Format.printf "  %d candidates tested, %d axioms entailed@."
    sem.Approx.Semantic.candidates_tested
    (Tbox.axiom_count sem.Approx.Semantic.tbox);
  List.iter
    (fun ax -> Format.printf "    %s@." (Syntax.axiom_to_string ax))
    (Tbox.axioms sem.Approx.Semantic.tbox);
  Format.printf "@.";

  (* 3. what did each lose?  measured against the Global reference *)
  let syn_score =
    Approx.Semantic.entailment_recovery ~source:expressive ~approx:syn.Approx.Syntactic.tbox
  in
  let sem_score =
    Approx.Semantic.entailment_recovery ~source:expressive ~approx:sem.Approx.Semantic.tbox
  in
  Format.printf "entailment recovery vs global semantic reference:@.";
  Format.printf "  syntactic: %.0f%%   semantic (per-axiom): %.0f%%@.@."
    (100. *. syn_score) (100. *. sem_score);

  (* 4. downstream: classify the semantic approximation with the
     digraph method and show a few consequences *)
  let cls = Quonto.Classify.classify sem.Approx.Semantic.tbox in
  Format.printf "== classification of the approximated ontology ==@.";
  List.iter
    (fun sub -> Format.printf "  %a@." Quonto.Classify.pp_name_subsumption sub)
    (Quonto.Classify.concept_hierarchy cls
     |> List.map (fun (a, b) -> Quonto.Classify.Concept_sub (a, b)));
  Format.printf "@.";

  (* 5. and use it to answer a query the expressive ontology implies:
     every manager works for something (heads ⊑ worksFor) *)
  let abox = Parser.parse_abox {| Manager(mia) |} in
  let system = Obda.Engine.of_abox sem.Approx.Semantic.tbox abox in
  let q =
    Obda.Cq.make [ "x" ]
      [ Obda.Cq.atom (Obda.Vabox.role_pred "worksFor") [ Obda.Cq.Var "x"; Obda.Cq.Var "y" ] ]
  in
  Format.printf "who works for something, given only Manager(mia)?@.";
  List.iter
    (fun t -> Format.printf "  -> %s@." (String.concat ", " t))
    (Obda.Engine.certain_answers system q)
