(* Working with a large real-world-style ontology: the Telecom-Italia
   scenario of Section 8.  A generated multi-domain telecom ontology is
   classified for design-quality control, modularized horizontally (by
   sub-domain) and vertically (by detail level), rendered to DOT/SVG,
   and explored through "relevant context" views.

   Run with:  dune exec examples/telecom_modularization.exe *)

open Dllite

(* A hand-written telecom core plus three generated sub-domains glued to
   it — large enough that nobody would render it as one diagram. *)
let telecom_core =
  Parser.tbox_of_string_exn
    {|
      role subscribes
      role connectsTo
      role billedTo
      attr msisdn

      Customer [= Party
      BusinessCustomer [= Customer
      ResidentialCustomer [= Customer
      BusinessCustomer [= not ResidentialCustomer

      Subscription [= exists billedTo . Customer
      exists subscribes [= Customer
      exists subscribes^- [= Subscription

      NetworkElement [= Asset
      Cell [= NetworkElement
      Router [= NetworkElement
      exists connectsTo [= NetworkElement
      exists connectsTo^- [= NetworkElement

      delta(msisdn) [= Subscription
    |}

let generated_subdomain label seed =
  let profile =
    {
      Ontgen.Generator.default_profile with
      Ontgen.Generator.label;
      concepts = 40;
      roles = 6;
      attributes = 2;
      disjoint_per_concept = 0.05;
    }
  in
  (* a per-domain name prefix keeps the generated vocabularies disjoint,
     as if the three sub-domains were modelled by independent teams *)
  Ontgen.Generator.generate ~seed ~prefix:(label ^ "_") profile

let () =
  (* assemble: core + generated billing/network/crm detail (distinct
     generated vocabularies simulate independently-built sub-domains) *)
  let full =
    List.fold_left Tbox.union telecom_core
      [
        generated_subdomain "billing" 11;
        generated_subdomain "network" 22;
        generated_subdomain "crm" 33;
      ]
  in
  Format.printf "Assembled ontology: %d axioms, %d concepts, %d roles@.@."
    (Tbox.axiom_count full)
    (Signature.concept_count (Tbox.signature full))
    (Signature.role_count (Tbox.signature full));

  (* 1. design-quality control: classification + coherence *)
  let cls = Quonto.Classify.classify full in
  let subs = Quonto.Classify.name_level cls in
  Format.printf "classification: %d inferred name-level subsumptions, coherent: %b@.@."
    (List.length subs)
    (Quonto.Unsat.coherent (Quonto.Classify.unsat cls));

  (* 2. horizontal modularization: the connected components recover the
     independently built sub-domains *)
  let modules = Graphical.Modular.horizontal full in
  Format.printf "== horizontal modules ==@.";
  List.iter
    (fun m ->
      Format.printf "  %-12s %3d axioms, %3d concepts@." m.Graphical.Modular.name
        (Tbox.axiom_count m.Graphical.Modular.tbox)
        (Signature.concept_count (Tbox.signature m.Graphical.Modular.tbox)))
    modules;
  Format.printf "@.";

  (* 3. vertical modularization of the telecom core *)
  Format.printf "== vertical views of the core ==@.";
  List.iter
    (fun (name, view) ->
      Format.printf "  %-10s %d axioms@." name (Tbox.axiom_count view))
    (Graphical.Modular.views telecom_core);
  Format.printf "@.";

  (* 4. render the core taxonomy as DOT and the full core as SVG *)
  let taxonomy = Graphical.Modular.vertical Graphical.Modular.Taxonomy telecom_core in
  let dot = Graphical.Dot.render ~name:"telecom-taxonomy"
      (Graphical.Translate.of_tbox taxonomy)
  in
  let svg = Graphical.Layout.to_svg (Graphical.Translate.of_tbox telecom_core) in
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Format.printf "wrote %s (%d bytes)@." path (String.length contents)
  in
  write "telecom_taxonomy.dot" dot;
  write "telecom_core.svg" svg;
  Format.printf "@.";

  (* 5. relevant-context view around Subscription, for the domain expert
     who only knows the billing area *)
  let view =
    Graphical.Context.compute ~radius:1 telecom_core
      [ Syntax.E_concept (Syntax.Atomic "Subscription") ]
  in
  Format.printf "== context of Subscription (radius 1) ==@.";
  List.iter
    (fun e ->
      Format.printf "  %-28s distance %d relevance %.2f@."
        (Syntax.expr_to_string e.Graphical.Context.symbol)
        e.Graphical.Context.distance e.Graphical.Context.relevance)
    view.Graphical.Context.foreground;
  Format.printf "  (%d symbols moved to the background)@."
    (List.length view.Graphical.Context.background);

  (* the context view is itself a diagram *)
  let focus_diagram =
    Graphical.Context.focus_diagram ~radius:1 telecom_core
      [ Syntax.E_concept (Syntax.Atomic "Subscription") ]
  in
  let elements, scopes, inclusions = Graphical.Diagram.stats focus_diagram in
  Format.printf "focus diagram: %d elements, %d scopes, %d inclusion edges@." elements
    scopes inclusions
