(* A full OBDA pipeline over a (simulated) university information
   system: autonomous relational sources, a DL-Lite ontology as the
   conceptual view, GAV mappings in between — the Section-1 architecture
   end to end, including consistency checking and a look inside the
   rewritings.

   Run with:  dune exec examples/university_obda.exe *)

open Dllite
module Cq = Obda.Cq
module Vabox = Obda.Vabox

let v x = Cq.Var x

(* ------------------------- the data sources -------------------------- *)

(* Two "legacy systems" with incompatible layouts: personnel keeps staff
   in one wide table, while the teaching system splits courses and
   assignments. *)
let database () =
  let db = Obda.Database.create () in
  Obda.Database.insert_all db "hr_staff"
    [
      (* id, name, role, dept *)
      [ "s1"; "Ada"; "professor"; "cs" ];
      [ "s2"; "Grace"; "professor"; "cs" ];
      [ "s3"; "Edsger"; "postdoc"; "math" ];
      [ "s4"; "Alan"; "admin"; "cs" ];
    ];
  Obda.Database.insert_all db "teach_course"
    [ (* code, title *) [ "c1"; "Databases" ]; [ "c2"; "Logic" ] ];
  Obda.Database.insert_all db "teach_assign"
    [ (* staff id, course code *) [ "s1"; "c1" ]; [ "s2"; "c2" ]; [ "s3"; "c2" ] ];
  Obda.Database.insert_all db "reg_enrolled"
    [ (* student, course *) [ "u1"; "c1" ]; [ "u2"; "c1" ]; [ "u2"; "c2" ] ];
  db

(* ------------------------- the ontology ------------------------------ *)

let tbox =
  Parser.tbox_of_string_exn
    {|
      role teaches
      role attends

      Professor [= Faculty
      Postdoc [= Faculty
      Faculty [= Staff
      AdminStaff [= Staff
      Faculty [= not AdminStaff

      # every teacher is faculty, everything taught is a course
      exists teaches [= Faculty
      exists teaches^- [= Course
      Professor [= exists teaches

      exists attends [= Student
      exists attends^- [= Course
      Student [= not Staff
    |}

(* ------------------------- the mappings ------------------------------ *)

let mappings =
  [
    (* hr_staff rows classify by their role column, via constants in the
       source query *)
    Obda.Mapping.make
      ~source:
        (Cq.make [ "id" ]
           [ Cq.atom "hr_staff" [ v "id"; v "n"; Cq.Const "professor"; v "d" ] ])
      ~target:(Obda.Mapping.Concept_head ("Professor", v "id"));
    Obda.Mapping.make
      ~source:
        (Cq.make [ "id" ]
           [ Cq.atom "hr_staff" [ v "id"; v "n"; Cq.Const "postdoc"; v "d" ] ])
      ~target:(Obda.Mapping.Concept_head ("Postdoc", v "id"));
    Obda.Mapping.make
      ~source:
        (Cq.make [ "id" ]
           [ Cq.atom "hr_staff" [ v "id"; v "n"; Cq.Const "admin"; v "d" ] ])
      ~target:(Obda.Mapping.Concept_head ("AdminStaff", v "id"));
    Obda.Mapping.make
      ~source:
        (Cq.make [ "s"; "c" ]
           [ Cq.atom "teach_assign" [ v "s"; v "c" ]; Cq.atom "teach_course" [ v "c"; v "t" ] ])
      ~target:(Obda.Mapping.Role_head ("teaches", v "s", v "c"));
    Obda.Mapping.make
      ~source:(Cq.make [ "u"; "c" ] [ Cq.atom "reg_enrolled" [ v "u"; v "c" ] ])
      ~target:(Obda.Mapping.Role_head ("attends", v "u", v "c"));
  ]

(* ----------------------------- queries ------------------------------- *)

let run_query system name q =
  Format.printf "== %s ==@.  %s@." name (Cq.to_string q);
  let answers = List.sort compare (Obda.Engine.certain_answers system q) in
  List.iter (fun t -> Format.printf "  -> %s@." (String.concat ", " t)) answers;
  if answers = [] then Format.printf "  -> (none)@.";
  Format.printf "@."

let () =
  let db = database () in
  let system = Obda.Engine.create ~tbox ~mappings ~database:db () in

  Format.printf "OBDA system assembled: %d mappings over %d source tuples@.@."
    (List.length mappings) (Obda.Database.size db);

  (* Faculty: postdocs and professors are inferred through the hierarchy
     even though no source mentions "Faculty" *)
  run_query system "Who is faculty?"
    (Cq.make [ "x" ] [ Cq.atom (Vabox.concept_pred "Faculty") [ v "x" ] ]);

  (* Courses: derived from BOTH teaching ranges and attendance ranges *)
  run_query system "What is a course?"
    (Cq.make [ "x" ] [ Cq.atom (Vabox.concept_pred "Course") [ v "x" ] ]);

  (* join across the two legacy systems: who teaches a course someone
     attends? *)
  run_query system "Teachers of attended courses"
    (Cq.make [ "t"; "c" ]
       [
         Cq.atom (Vabox.role_pred "teaches") [ v "t"; v "c" ];
         Cq.atom (Vabox.role_pred "attends") [ v "s"; v "c" ];
       ]);

  (* the rewriting at work: professors count as teachers even without an
     assignment row, thanks to Professor [= exists teaches *)
  run_query system "Who teaches anything?"
    (Cq.make [ "x" ] [ Cq.atom (Vabox.role_pred "teaches") [ v "x"; v "y" ] ]);

  (* show the rewriting itself *)
  let q = Cq.make [ "x" ] [ Cq.atom (Vabox.role_pred "teaches") [ v "x"; v "y" ] ] in
  let rewritten, stats = Obda.Rewrite.perfect_ref tbox [ q ] in
  Format.printf "== PerfectRef rewriting of teaches(x, _) ==@.";
  List.iter (fun q' -> Format.printf "  %s@." (Cq.to_string q')) rewritten;
  Format.printf "  (%d candidates generated, %d kept)@.@." stats.Obda.Rewrite.generated
    stats.Obda.Rewrite.output_size;

  (* consistency: currently fine *)
  Format.printf "consistent: %b@.@." (Obda.Engine.consistent system);

  (* now poison the data: Ada is also recorded as a student *)
  Obda.Database.insert db "reg_enrolled" [ "s1"; "c2" ];
  Format.printf "after enrolling professor s1 as a student...@.";
  let violations = Obda.Engine.violations system in
  List.iter
    (fun viol ->
      Format.printf "  violated: %s  witnesses: [%s]@."
        (Syntax.axiom_to_string viol.Obda.Consistency.axiom)
        (String.concat ", " viol.Obda.Consistency.witnesses))
    violations;
  Format.printf "consistent: %b@." (Obda.Engine.consistent system)
