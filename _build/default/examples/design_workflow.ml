(* The Section-3 methodology, end to end: "a workflow that guides the
   ontology engineer through the process of ontology design,
   visualization, and formalization".

   (i)    design with patterns + the graphical language;
   (ii)   translate the diagram into logical axioms;
   (iii)  refine for OBDA (here: constraints + OWL 2 QL interchange);
   (iv)   intensional reasoning as design-quality control;
   then evolve the design and review the change with the logical diff,
   regenerate the documentation, and export for standard OWL tooling.

   Run with:  dune exec examples/design_workflow.exe *)

open Dllite

let () =
  (* (i) design: instantiate recurring patterns (Section 8) *)
  let base =
    List.fold_left Patterns.apply Tbox.empty
      [
        Patterns.part_whole ~part:"County" ~whole:"State" ();
        Patterns.partition ~parent:"Region" ~cases:[ "County"; "State" ] ();
        Patterns.temporal_snapshot ~entity:"County" ();
      ]
  in
  (* every pattern promises consequences; check them *)
  List.iter
    (fun i ->
      match Patterns.verify i with
      | [] -> Format.printf "pattern %-40s OK@." i.Patterns.pattern
      | broken ->
        Format.printf "pattern %-40s BROKEN (%d promises)@." i.Patterns.pattern
          (List.length broken))
    [
      Patterns.part_whole ~part:"County" ~whole:"State" ();
      Patterns.partition ~parent:"Region" ~cases:[ "County"; "State" ] ();
      Patterns.temporal_snapshot ~entity:"County" ();
    ];
  Format.printf "@.";

  (* hand-written refinements on top of the patterns *)
  let design =
    Tbox.union base
      (Parser.tbox_of_string_exn
         {|
           role isPartOf
           County [= Region
           State [= Region
           attr population
           delta(population) [= Region
         |})
  in

  (* (ii) the design as a diagram (and back, losslessly) *)
  let diagram = Graphical.Translate.of_tbox design in
  Graphical.Diagram.validate diagram;
  let elements, scopes, inclusions = Graphical.Diagram.stats diagram in
  Format.printf "diagram: %d elements, %d scopes, %d inclusion edges@." elements
    scopes inclusions;
  let recovered = Graphical.Translate.to_tbox diagram in
  Format.printf "diagram -> axioms recovers the design: %b@.@."
    (List.for_all (fun ax -> Tbox.mem ax recovered) (Tbox.axioms design));

  (* (iv) design-quality control: classification, coherence, taxonomy *)
  let cls = Quonto.Classify.classify design in
  Format.printf "coherent: %b@." (Quonto.Unsat.coherent (Quonto.Classify.unsat cls));
  let taxonomy = Quonto.Taxonomy.build cls Quonto.Taxonomy.Concepts in
  Format.printf "taxonomy (depth %d):@.%a@." (Quonto.Taxonomy.depth taxonomy)
    (fun fmt t -> Quonto.Taxonomy.pp fmt t)
    taxonomy;

  (* evolve: a later edit accidentally merges County into State *)
  let evolved =
    Tbox.add
      (Syntax.Concept_incl (Syntax.Atomic "County", Syntax.C_basic (Syntax.Atomic "State")))
      design
  in
  let report = Evolution.diff ~prev:design ~next:evolved in
  Format.printf "review of the edit:@.%a" Evolution.pp report;
  Format.printf "conservative: %b  (County is now unsatisfiable: the partition \
                 made County and State disjoint)@.@."
    (Evolution.is_conservative report);

  (* documentation regenerates from the (original) design *)
  let doc =
    Docgen.generate
      ~annotations:
        [
          ("County", "An administrative subdivision of a State.");
          ("isPartOf", "Transitive-intent part-whole link (Figure 2 pattern).");
        ]
      ~title:"Territory ontology" design
  in
  let markdown = Docgen.to_markdown doc in
  Format.printf "documentation: %d bytes of Markdown, %d bytes of HTML@."
    (String.length markdown)
    (String.length (Docgen.to_html doc));

  (* interchange: standard OWL tooling reads the same design *)
  let owl = Owl2ql.to_functional ~iri:"http://example.org/territory" design in
  let back = Owl2ql.of_functional owl in
  Format.printf "OWL 2 QL export: %d bytes; reimport equal: %b@."
    (String.length owl) (Tbox.equal design back)
