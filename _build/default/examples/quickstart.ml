(* Quickstart: parse a small DL-Lite ontology, classify it with the
   digraph method, check a few logical implications, and answer a query
   over a toy ABox.

   Run with:  dune exec examples/quickstart.exe *)

open Dllite

let ontology_source =
  {|
    # A small company ontology in the ASCII DL-Lite syntax.
    role worksFor
    role manages
    attr salary

    Manager [= Employee
    Employee [= Person
    Employee [= exists worksFor
    exists worksFor [= Employee
    exists worksFor^- [= Organization
    manages [= worksFor
    Manager [= exists manages
    delta(salary) [= Employee
    Organization [= not Person
  |}

let () =
  let tbox = Parser.tbox_of_string_exn ontology_source in
  Format.printf "Parsed %d axioms over %d concepts / %d roles / %d attributes@.@."
    (Tbox.axiom_count tbox)
    (Signature.concept_count (Tbox.signature tbox))
    (Signature.role_count (Tbox.signature tbox))
    (Signature.attribute_count (Tbox.signature tbox));

  (* 1. classification: the paper's graph-based method *)
  let cls = Quonto.Classify.classify tbox in
  Format.printf "== Classification (Phi_T + Omega_T) ==@.";
  List.iter
    (fun sub -> Format.printf "  %a@." Quonto.Classify.pp_name_subsumption sub)
    (Quonto.Classify.name_level cls);
  Format.printf "  coherent: %b@.@." (Quonto.Unsat.coherent (Quonto.Classify.unsat cls));

  (* 2. logical implication, both engines *)
  let deductive = Quonto.Deductive.of_classification cls in
  let on_demand = Quonto.Implication.prepare tbox in
  let queries =
    [
      "Manager [= exists worksFor";
      "Manager [= exists worksFor . Organization";
      "exists manages [= Employee";
      "Manager [= not Organization";
      "Person [= Employee";
    ]
  in
  Format.printf "== Logical implication ==@.";
  List.iter
    (fun source ->
      (* parse each query axiom through a tiny TBox document *)
      let query_tbox =
        Parser.tbox_of_string_exn ("role worksFor\nrole manages\n" ^ source)
      in
      match Tbox.axioms query_tbox with
      | [ ax ] ->
        Format.printf "  %-45s closure:%b on-demand:%b@." source
          (Quonto.Deductive.entails deductive ax)
          (Quonto.Implication.entails on_demand ax)
      | _ -> assert false)
    queries;
  Format.printf "@.";

  (* 3. query answering over a materialized ABox *)
  let abox =
    Parser.parse_abox
      {|
        Manager(alice)
        worksFor(bob, acme)
        attr salary(carol, high)
      |}
  in
  let system = Obda.Engine.of_abox tbox abox in
  let v x = Obda.Cq.Var x in
  let employees =
    Obda.Cq.make [ "x" ] [ Obda.Cq.atom (Obda.Vabox.concept_pred "Employee") [ v "x" ] ]
  in
  Format.printf "== Certain answers: Employee(x) ==@.";
  List.iter
    (fun tuple -> Format.printf "  %s@." (String.concat ", " tuple))
    (List.sort compare (Obda.Engine.certain_answers system employees));
  Format.printf "  (alice via Manager, bob via worksFor, carol via salary)@.";
  Format.printf "@.consistent: %b@." (Obda.Engine.consistent system)
