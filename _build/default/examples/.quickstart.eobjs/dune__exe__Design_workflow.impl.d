examples/design_workflow.ml: Dllite Docgen Evolution Format Graphical List Owl2ql Parser Patterns Quonto String Syntax Tbox
