examples/telecom_modularization.ml: Dllite Format Graphical List Ontgen Parser Quonto Signature String Syntax Tbox
