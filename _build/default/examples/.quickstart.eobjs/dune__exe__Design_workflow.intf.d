examples/design_workflow.mli:
