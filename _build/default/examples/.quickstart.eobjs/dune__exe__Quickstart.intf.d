examples/quickstart.mli:
