examples/telecom_modularization.mli:
