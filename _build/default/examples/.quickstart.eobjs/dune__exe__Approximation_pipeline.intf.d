examples/approximation_pipeline.mli:
