examples/approximation_pipeline.ml: Approx Dllite Format List Obda Owlfrag Parser Quonto String Syntax Sys Tbox
