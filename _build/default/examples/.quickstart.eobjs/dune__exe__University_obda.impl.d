examples/university_obda.ml: Dllite Format List Obda Parser String Syntax
