examples/quickstart.ml: Dllite Format List Obda Parser Quonto Signature String Tbox
