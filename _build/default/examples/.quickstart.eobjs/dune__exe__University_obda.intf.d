examples/university_obda.mli:
