(* Tests for transitive reduction and taxonomy construction. *)

open Dllite
module Graph = Graphlib.Graph
module Closure = Graphlib.Closure
module Reduction = Graphlib.Reduction
module Taxonomy = Quonto.Taxonomy

let parse s =
  match Parser.tbox_of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" e

(* ----------------------------- reduction ----------------------------- *)

let test_reduce_chain () =
  (* 0 -> 1 -> 2 plus the transitive 0 -> 2: reduction drops the long edge *)
  let g = Graph.create ~initial_nodes:3 () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 0 2;
  let closure = Closure.compute g in
  Alcotest.(check (list (pair int int))) "hasse edges" [ (0, 1); (1, 2) ]
    (List.sort compare (Reduction.reduce_dag closure))

let test_reduce_diamond () =
  let g = Graph.create ~initial_nodes:4 () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  Graph.add_edge g 1 3;
  Graph.add_edge g 2 3;
  Graph.add_edge g 0 3;
  (* redundant *)
  let closure = Closure.compute g in
  Alcotest.(check (list (pair int int))) "diamond"
    [ (0, 1); (0, 2); (1, 3); (2, 3) ]
    (List.sort compare (Reduction.reduce_dag closure))

let test_reduce_with_cycle () =
  (* 0 <-> 1 collapse into one component above 2 *)
  let g = Graph.create ~initial_nodes:3 () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Graph.add_edge g 1 2;
  let scc, edges = Reduction.reduce g in
  Alcotest.(check int) "two components" 2 scc.Graphlib.Scc.count;
  Alcotest.(check int) "one hasse edge" 1 (List.length edges)

let prop_reduction_preserves_reachability =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 12 in
      let* edges =
        list_size (int_bound 25) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      in
      return (n, edges))
  in
  let arb =
    QCheck.make
      ~print:(fun (n, es) ->
        Printf.sprintf "n=%d [%s]" n
          (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d>%d" u v) es)))
      gen
  in
  QCheck.Test.make ~count:200 ~name:"transitive reduction preserves reachability" arb
    (fun (n, es) ->
      let g = Graph.create ~initial_nodes:n () in
      List.iter (fun (u, v) -> Graph.add_edge g u v) es;
      let scc, hasse = Reduction.reduce g in
      (* rebuild a graph from the reduced form and compare reachability
         between original nodes *)
      let dag = Graph.create ~initial_nodes:scc.Graphlib.Scc.count () in
      List.iter (fun (u, v) -> Graph.add_edge dag u v) hasse;
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let original = Graph.reaches g u v in
          let reduced =
            Graph.reaches dag scc.Graphlib.Scc.component.(u)
              scc.Graphlib.Scc.component.(v)
          in
          if original <> reduced then ok := false
        done
      done;
      !ok)

let prop_reduction_minimal =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 10 in
      let* edges =
        list_size (int_bound 20) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      in
      return (n, edges))
  in
  let arb = QCheck.make ~print:(fun (n, _) -> string_of_int n) gen in
  QCheck.Test.make ~count:100 ~name:"reduction has no redundant edge" arb
    (fun (n, es) ->
      let g = Graph.create ~initial_nodes:n () in
      List.iter (fun (u, v) -> Graph.add_edge g u v) es;
      let scc, hasse = Reduction.reduce g in
      (* dropping any single edge must lose some reachability *)
      List.for_all
        (fun dropped ->
          let dag = Graph.create ~initial_nodes:scc.Graphlib.Scc.count () in
          List.iter
            (fun e -> if e <> dropped then Graph.add_edge dag (fst e) (snd e))
            hasse;
          not (Graph.reaches dag (fst dropped) (snd dropped)))
        hasse)

(* ----------------------------- taxonomy ------------------------------ *)

let company_tbox =
  {|
    Manager [= Employee
    Employee [= Person
    Intern [= Person
    Boss [= Manager
    Manager [= Chief
    Chief [= Manager
  |}

let taxonomy_of s =
  Taxonomy.build (Quonto.Classify.classify (parse s)) Taxonomy.Concepts

let test_taxonomy_structure () =
  let t = taxonomy_of company_tbox in
  Alcotest.(check (list string)) "direct supers of Manager" [ "Employee" ]
    (Taxonomy.direct_supers t "Manager");
  Alcotest.(check (list string)) "Manager equiv Chief" [ "Chief" ]
    (Taxonomy.equivalents t "Manager");
  Alcotest.(check (list string)) "children of Manager class" [ "Boss" ]
    (Taxonomy.direct_subs t "Manager");
  (* no transitive edge Person <- Manager *)
  Alcotest.(check (list string)) "direct subs of Person" [ "Employee"; "Intern" ]
    (Taxonomy.direct_subs t "Person")

let test_taxonomy_roots_leaves_depth () =
  let t = taxonomy_of company_tbox in
  let names_of c = (Taxonomy.node t c).Taxonomy.members in
  Alcotest.(check (list (list string))) "roots" [ [ "Person" ] ]
    (List.map names_of (Taxonomy.roots t));
  Alcotest.(check bool) "Boss is a leaf" true
    (List.exists (fun c -> names_of c = [ "Boss" ]) (Taxonomy.leaves t));
  Alcotest.(check int) "depth" 4 (Taxonomy.depth t)

let test_taxonomy_unsat_quarantine () =
  let t = taxonomy_of {|
    Bad [= Good
    Bad [= not Good
    Good [= Thing
  |} in
  Alcotest.(check (list string)) "unsat listed" [ "Bad" ] t.Taxonomy.unsatisfiable;
  Alcotest.(check bool) "Bad not in hierarchy" true (Taxonomy.find t "Bad" = None);
  Alcotest.(check (list string)) "Good placed normally" [ "Thing" ]
    (Taxonomy.direct_supers t "Good")

let test_taxonomy_roles () =
  let t =
    Taxonomy.build
      (Quonto.Classify.classify (parse {|
        role p
        role q
        role r
        p [= q
        q [= r
      |}))
      Taxonomy.Roles
  in
  Alcotest.(check (list string)) "direct super of p" [ "q" ]
    (Taxonomy.direct_supers t "p");
  Alcotest.(check (list string)) "direct super of q" [ "r" ]
    (Taxonomy.direct_supers t "q")

let prop_taxonomy_consistent_with_classification =
  QCheck.Test.make ~count:100 ~name:"taxonomy direct edges imply subsumption"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      let tbox = Ontgen.Qgen.tbox_of_axioms axioms in
      let cls = Quonto.Classify.classify tbox in
      let t = Taxonomy.build cls Taxonomy.Concepts in
      let sub a b =
        Quonto.Classify.subsumes cls
          (Syntax.E_concept (Syntax.Atomic a))
          (Syntax.E_concept (Syntax.Atomic b))
      in
      Signature.concepts (Tbox.signature tbox)
      |> List.for_all (fun a ->
             List.for_all (fun b -> sub a b) (Taxonomy.direct_supers t a)
             && List.for_all (fun e -> sub a e && sub e a) (Taxonomy.equivalents t a)))

let prop_taxonomy_covers_classification =
  QCheck.Test.make ~count:100 ~name:"taxonomy paths recover all subsumptions"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      let tbox = Ontgen.Qgen.tbox_of_axioms axioms in
      let cls = Quonto.Classify.classify tbox in
      let t = Taxonomy.build cls Taxonomy.Concepts in
      (* walk up the taxonomy from a and collect everything reachable *)
      let rec ancestors seen name =
        List.fold_left
          (fun seen s -> if List.mem s seen then seen else ancestors (s :: seen) s)
          seen
          (Taxonomy.direct_supers t name @ Taxonomy.equivalents t name)
      in
      Signature.concepts (Tbox.signature tbox)
      |> List.for_all (fun a ->
             if Taxonomy.find t a = None then true (* unsat: quarantined *)
             else
               let reachable = ancestors [ a ] a in
               Signature.concepts (Tbox.signature tbox)
               |> List.for_all (fun b ->
                      let subsumed =
                        Quonto.Classify.subsumes cls
                          (Syntax.E_concept (Syntax.Atomic a))
                          (Syntax.E_concept (Syntax.Atomic b))
                      in
                      (not subsumed) || List.mem b reachable
                      || Taxonomy.find t b = None)))

let () =
  Alcotest.run "taxonomy"
    [
      ( "reduction",
        [
          Alcotest.test_case "chain" `Quick test_reduce_chain;
          Alcotest.test_case "diamond" `Quick test_reduce_diamond;
          Alcotest.test_case "cycle collapse" `Quick test_reduce_with_cycle;
          QCheck_alcotest.to_alcotest prop_reduction_preserves_reachability;
          QCheck_alcotest.to_alcotest prop_reduction_minimal;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "structure" `Quick test_taxonomy_structure;
          Alcotest.test_case "roots/leaves/depth" `Quick test_taxonomy_roots_leaves_depth;
          Alcotest.test_case "unsat quarantine" `Quick test_taxonomy_unsat_quarantine;
          Alcotest.test_case "role taxonomy" `Quick test_taxonomy_roles;
          QCheck_alcotest.to_alcotest prop_taxonomy_consistent_with_classification;
          QCheck_alcotest.to_alcotest prop_taxonomy_covers_classification;
        ] );
    ]
