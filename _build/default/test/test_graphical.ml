(* Tests for the graphical language: diagram well-formedness, the
   Figure-2 reproduction, diagram<->TBox round-trips, DOT/SVG rendering,
   modularization and context extraction. *)

open Dllite
module Diagram = Graphical.Diagram
module Translate = Graphical.Translate
module Dot = Graphical.Dot
module Layout = Graphical.Layout
module Modular = Graphical.Modular
module Context = Graphical.Context

let parse s =
  match Parser.tbox_of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" e

let axiom = Alcotest.testable Syntax.pp_axiom Syntax.equal_axiom

(* substring containment without the Str dependency *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------ figure 2 ----------------------------- *)

let figure2_axioms =
  [
    Syntax.Concept_incl
      (Syntax.Atomic "County", Syntax.C_exists_qual (Syntax.Direct "isPartOf", "State"));
    Syntax.Concept_incl
      (Syntax.Atomic "State", Syntax.C_exists_qual (Syntax.Inverse "isPartOf", "County"));
  ]

let test_figure2_translation () =
  (* the paper's reference example must translate to exactly its two
     DL-Lite assertions *)
  let d = Translate.figure2 () in
  Diagram.validate d;
  let t = Translate.to_tbox d in
  Alcotest.(check (list axiom)) "figure 2 axioms"
    (List.sort Syntax.compare_axiom figure2_axioms)
    (Tbox.axioms t)

let test_figure2_roundtrip () =
  let t = Tbox.of_axioms figure2_axioms in
  let d = Translate.of_tbox t in
  Diagram.validate d;
  let t' = Translate.to_tbox d in
  Alcotest.(check (list axiom)) "roundtrip" (Tbox.axioms t) (Tbox.axioms t')

(* --------------------------- well-formedness ------------------------- *)

let test_validate_rejects_bad_square () =
  let b = Diagram.builder () in
  let c = Diagram.concept b "A" in
  (* a domain square attached to a concept box is ill-formed *)
  let _sq = Diagram.add_element b (Diagram.Domain_square c) in
  let d = Diagram.finish b in
  match Diagram.validate d with
  | () -> Alcotest.fail "expected Ill_formed"
  | exception Diagram.Ill_formed _ -> ()

let test_validate_rejects_cross_sort_edge () =
  let b = Diagram.builder () in
  let c = Diagram.concept b "A" in
  let r = Diagram.role b "p" in
  Diagram.include_ b ~source:c ~target:r;
  (match Diagram.validate (Diagram.finish b) with
   | () -> Alcotest.fail "expected Ill_formed"
   | exception Diagram.Ill_formed _ -> ())

let test_validate_rejects_inverted_concept_edge () =
  let b = Diagram.builder () in
  let c1 = Diagram.concept b "A" in
  let c2 = Diagram.concept b "B" in
  Diagram.include_ ~inverted:true b ~source:c1 ~target:c2;
  match Diagram.validate (Diagram.finish b) with
  | () -> Alcotest.fail "expected Ill_formed"
  | exception Diagram.Ill_formed _ -> ()

(* ------------------------------ roundtrip ---------------------------- *)

(* of_tbox normalizes inverse-on-the-left role inclusions; compare
   modulo that normalization *)
let normalize_axiom = function
  | Syntax.Role_incl (Syntax.Inverse p, Syntax.R_role q) ->
    Syntax.Role_incl (Syntax.Direct p, Syntax.R_role (Syntax.role_inverse q))
  | Syntax.Role_incl (Syntax.Inverse p, Syntax.R_neg q) ->
    Syntax.Role_incl (Syntax.Direct p, Syntax.R_neg (Syntax.role_inverse q))
  | ax -> ax

let roundtrip_preserves t =
  let d = Translate.of_tbox t in
  Diagram.validate d;
  let t' = Translate.to_tbox d in
  let norm tb =
    List.sort_uniq Syntax.compare_axiom (List.map normalize_axiom (Tbox.axioms tb))
  in
  norm t = norm t'

let test_roundtrip_rich () =
  let t =
    parse
      {|
        role p
        role q
        attr u
        attr v
        A [= B
        A [= not C
        B [= exists p
        exists p^- [= C
        A [= exists q . C
        p [= q
        p [= q^-
        q^- [= p
        p [= not q
        u [= v
        u [= not v
        delta(u) [= A
        A [= delta(v)
      |}
  in
  Alcotest.(check bool) "rich roundtrip" true (roundtrip_preserves t)

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"diagram roundtrip preserves axioms"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      roundtrip_preserves (Ontgen.Qgen.tbox_of_axioms axioms))

(* ------------------------------ rendering ---------------------------- *)

let test_dot_render () =
  let dot = Dot.render (Translate.figure2 ()) in
  Alcotest.(check bool) "digraph" true (String.length dot > 0);
  let has needle = contains dot needle in
  Alcotest.(check bool) "county box" true (has "label=\"County\", shape=box");
  Alcotest.(check bool) "role diamond" true (has "label=\"isPartOf\", shape=diamond");
  Alcotest.(check bool) "white square" true (has "fillcolor=white");
  Alcotest.(check bool) "black square" true (has "fillcolor=black")

let test_svg_render () =
  let svg = Layout.to_svg (Translate.figure2 ()) in
  let has needle = contains svg needle in
  Alcotest.(check bool) "svg root" true (has "<svg");
  Alcotest.(check bool) "county text" true (has ">County</text>");
  Alcotest.(check bool) "dotted scope edges" true (has "stroke-dasharray");
  Alcotest.(check bool) "arrowheads" true (has "marker-end")

let test_layout_ranks () =
  (* subsumee below subsumer: County points at a square, State too *)
  let t = parse {|
    A [= B
    B [= C
  |} in
  let d = Translate.of_tbox t in
  let l = Layout.compute d in
  let pos name =
    let id =
      List.find_map
        (fun (id, e) ->
          match e with
          | Diagram.Concept_box a when a = name -> Some id
          | _ -> None)
        d.Diagram.elements
      |> Option.get
    in
    List.assoc id l.Layout.positions
  in
  (* SVG y grows downward: subsumer C must be above (smaller y) *)
  Alcotest.(check bool) "C above B" true ((pos "C").Layout.y < (pos "B").Layout.y);
  Alcotest.(check bool) "B above A" true ((pos "B").Layout.y < (pos "A").Layout.y)

(* --------------------------- modularization -------------------------- *)

let test_horizontal_components () =
  let t = parse {|
    A [= B
    C [= D
    role p
    exists p [= A
  |} in
  let modules = Modular.horizontal t in
  Alcotest.(check int) "two components" 2 (List.length modules);
  let sizes = List.map (fun m -> Tbox.axiom_count m.Modular.tbox) modules in
  Alcotest.(check (list int)) "sizes" [ 1; 2 ] (List.sort compare sizes)

let test_horizontal_by_domains () =
  let t = parse {|
    Customer [= Party
    Invoice [= Document
  |} in
  let modules =
    Modular.by_domains [ ("Customer", "crm"); ("Invoice", "billing") ] t
  in
  let names = List.map (fun m -> m.Modular.name) modules in
  Alcotest.(check (list string)) "domains" [ "billing"; "crm" ] names

let test_vertical_levels () =
  let t =
    parse
      {|
        role p
        A [= B
        A [= exists p
        A [= not C
        A [= exists p . B
        p [= q
      |}
  in
  let taxonomy = Modular.vertical Modular.Taxonomy t in
  Alcotest.(check int) "taxonomy keeps name pairs" 1 (Tbox.axiom_count taxonomy);
  let roles = Modular.vertical Modular.With_roles t in
  Alcotest.(check int) "roles level" 3 (Tbox.axiom_count roles);
  let full = Modular.vertical Modular.Full t in
  Alcotest.(check int) "full keeps all" (Tbox.axiom_count t) (Tbox.axiom_count full);
  (* signature survives filtering: the vocabulary is part of the view *)
  Alcotest.(check bool) "signature kept" true
    (Signature.mem_role "p" (Tbox.signature taxonomy))

(* ------------------------------ context ------------------------------ *)

let test_context_radius () =
  let t =
    parse
      {|
        A [= B
        B [= C
        C [= D
        D [= E
        X [= Y
      |}
  in
  let view =
    Context.compute ~radius:2 t [ Syntax.E_concept (Syntax.Atomic "A") ]
  in
  let fg_names =
    List.filter_map
      (fun e ->
        match e.Context.symbol with
        | Syntax.E_concept (Syntax.Atomic a) -> Some a
        | _ -> None)
      view.Context.foreground
  in
  Alcotest.(check bool) "A in foreground" true (List.mem "A" fg_names);
  Alcotest.(check bool) "C at distance 2 in" true (List.mem "C" fg_names);
  Alcotest.(check bool) "D beyond radius out" false (List.mem "D" fg_names);
  Alcotest.(check bool) "X disconnected out" false (List.mem "X" fg_names);
  (* focus tbox keeps only foreground-internal axioms *)
  Alcotest.(check int) "focus axioms" 2 (Tbox.axiom_count view.Context.focus_tbox)

let test_context_relevance_ordering () =
  let t = parse {|
    Hub [= A
    Hub [= B
    Hub [= C
    A [= Leaf
  |} in
  let view = Context.compute ~radius:2 t [ Syntax.E_concept (Syntax.Atomic "Hub") ] in
  match view.Context.foreground with
  | first :: _ ->
    Alcotest.(check bool) "hub ranked first" true
      (Syntax.equal_expr first.Context.symbol (Syntax.E_concept (Syntax.Atomic "Hub")))
  | [] -> Alcotest.fail "empty foreground"

let () =
  Alcotest.run "graphical"
    [
      ( "figure2",
        [
          Alcotest.test_case "translation" `Quick test_figure2_translation;
          Alcotest.test_case "roundtrip" `Quick test_figure2_roundtrip;
        ] );
      ( "wellformedness",
        [
          Alcotest.test_case "square attachment" `Quick test_validate_rejects_bad_square;
          Alcotest.test_case "cross-sort edge" `Quick test_validate_rejects_cross_sort_edge;
          Alcotest.test_case "inverted concept edge" `Quick
            test_validate_rejects_inverted_concept_edge;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "rich tbox" `Quick test_roundtrip_rich;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "dot" `Quick test_dot_render;
          Alcotest.test_case "svg" `Quick test_svg_render;
          Alcotest.test_case "layout ranks" `Quick test_layout_ranks;
        ] );
      ( "modularization",
        [
          Alcotest.test_case "horizontal components" `Quick test_horizontal_components;
          Alcotest.test_case "horizontal domains" `Quick test_horizontal_by_domains;
          Alcotest.test_case "vertical levels" `Quick test_vertical_levels;
        ] );
      ( "context",
        [
          Alcotest.test_case "radius" `Quick test_context_radius;
          Alcotest.test_case "relevance" `Quick test_context_relevance_ordering;
        ] );
    ]
