(* Tests for the simulated competing reasoners: the naive saturation
   classifier, the consequence-based (CB) classifier, and the tableau
   personas.  The central property: on concept hierarchies, everyone
   agrees with the digraph classifier; CB's documented incompleteness is
   confined to the property hierarchy. *)

open Dllite
module Naive = Baselines.Naive
module Cb = Baselines.Cb
module Personas = Baselines.Personas
module Classify = Quonto.Classify

let parse s =
  match Parser.tbox_of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" e

let pairs = Alcotest.(list (pair string string))

let quonto_concept_pairs t =
  List.sort compare (Classify.concept_hierarchy (Classify.classify t))

let quonto_role_pairs t =
  List.sort compare (Classify.role_hierarchy (Classify.classify t))

(* ------------------------------- naive ------------------------------- *)

let test_naive_agrees_simple () =
  let t = parse {|
    A [= B
    B [= C
    role p
    exists p [= A
  |} in
  let n = Naive.classify t in
  Alcotest.check pairs "concept hierarchy" (quonto_concept_pairs t)
    (Naive.concept_hierarchy n)

let test_naive_unsat () =
  let t = parse {|
    A [= B
    A [= not B
  |} in
  let n = Naive.classify t in
  Alcotest.(check bool) "A unsat" true
    (Naive.is_unsat n (Syntax.E_concept (Syntax.Atomic "A")));
  Alcotest.(check bool) "B sat" false
    (Naive.is_unsat n (Syntax.E_concept (Syntax.Atomic "B")))

let prop_naive_matches_quonto =
  QCheck.Test.make ~count:80 ~name:"naive saturation = digraph classification"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      let t = Ontgen.Qgen.tbox_of_axioms axioms in
      let n = Naive.classify t in
      let cls = Classify.classify t in
      Naive.concept_hierarchy n = List.sort compare (Classify.concept_hierarchy cls))

(* --------------------------------- cb -------------------------------- *)

let test_cb_concept_hierarchy () =
  let t = parse {|
    role p
    A [= B
    B [= exists p
    exists p [= C
    p [= q
  |} in
  let cb = Cb.classify t in
  Alcotest.check pairs "concepts complete" (quonto_concept_pairs t)
    (Cb.concept_hierarchy cb)

let test_cb_role_hierarchy_incomplete () =
  (* told chain p ⊑ q ⊑ r: full classification infers p ⊑ r, the CB
     simulation (like the CB reasoner per the paper) reports only told
     pairs *)
  let t = parse {|
    role p
    role q
    role r
    p [= q
    q [= r
  |} in
  let cb = Cb.classify t in
  Alcotest.check pairs "told only" [ ("p", "q"); ("q", "r") ] (Cb.role_hierarchy cb);
  Alcotest.(check bool) "quonto is complete here" true
    (List.mem ("p", "r") (quonto_role_pairs t))

let prop_cb_concepts_match_quonto_positive =
  (* restricted to positive TBoxes: CB's incoherence propagation is
     deliberately weaker than computeUnsat on the exotic NI interactions *)
  QCheck.Test.make ~count:80 ~name:"CB concept hierarchy = digraph (positive TBoxes)"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      let axioms = List.filter Syntax.is_positive axioms in
      let t = Ontgen.Qgen.tbox_of_axioms axioms in
      let cb = Cb.classify t in
      let cls = Classify.classify t in
      Cb.concept_hierarchy cb = List.sort compare (Classify.concept_hierarchy cls))

(* ------------------------------ personas ----------------------------- *)

let all_personas = [ Personas.pellet; Personas.fact_plus_plus; Personas.hermit ]

let test_personas_agree () =
  let t =
    parse
      {|
        role p
        Manager [= Employee
        Employee [= Person
        Employee [= exists p
        exists p^- [= Org
        Intern [= Person
        Intern [= not Manager
      |}
  in
  let expected = quonto_concept_pairs t in
  List.iter
    (fun persona ->
      let r = Personas.classify persona t in
      Alcotest.check pairs
        (persona.Personas.name ^ " concepts")
        expected r.Personas.concept_pairs;
      Alcotest.check pairs
        (persona.Personas.name ^ " roles")
        (quonto_role_pairs t) r.Personas.role_pairs)
    all_personas

let test_personas_unsat_names () =
  let t = parse {|
    A [= B
    A [= not B
    concept Z
  |} in
  let r = Personas.classify Personas.pellet t in
  Alcotest.(check (list string)) "pellet finds unsat" [ "A" ] r.Personas.unsat_names;
  (* an unsat name is subsumed by every name *)
  Alcotest.(check bool) "A [= Z" true (List.mem ("A", "Z") r.Personas.concept_pairs)

let test_enhanced_traversal_fewer_tests () =
  (* on a pure chain the taxonomy walk must beat brute force *)
  let axioms =
    List.init 19 (fun i ->
        Syntax.Concept_incl
          ( Syntax.Atomic (Printf.sprintf "C%d" (i + 1)),
            Syntax.C_basic (Syntax.Atomic (Printf.sprintf "C%d" i)) ))
  in
  let t = Tbox.of_axioms axioms in
  let brute = Personas.classify { Personas.pellet with told_subsumers = false } t in
  let enhanced =
    Personas.classify { Personas.fact_plus_plus with told_subsumers = false } t
  in
  Alcotest.(check bool) "same answers" true
    (brute.Personas.concept_pairs = enhanced.Personas.concept_pairs);
  Alcotest.(check bool)
    (Printf.sprintf "fewer tests (%d < %d)" enhanced.Personas.subsumption_tests
       brute.Personas.subsumption_tests)
    true
    (enhanced.Personas.subsumption_tests < brute.Personas.subsumption_tests)

let test_persona_timeout () =
  let profile =
    Ontgen.Generator.scale 0.1 Ontgen.Profiles.galen
  in
  let t = Ontgen.Generator.generate profile in
  match Personas.classify ~deadline:0.05 Personas.pellet t with
  | _ -> Alcotest.fail "expected timeout on Galen-like profile"
  | exception Personas.Timed_out -> ()

let prop_personas_match_quonto =
  QCheck.Test.make ~count:25 ~name:"tableau personas = digraph classification"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      let t = Ontgen.Qgen.tbox_of_axioms axioms in
      let expected = quonto_concept_pairs t in
      List.for_all
        (fun persona ->
          (* a blown per-test tableau budget means "unknown", not wrong:
             skip such cases (they are why Figure 1 has timeout cells) *)
          match Personas.classify ~deadline:30.0 persona t with
          | r -> r.Personas.concept_pairs = expected
          | exception Personas.Timed_out -> true)
        all_personas)

let () =
  Alcotest.run "baselines"
    [
      ( "naive",
        [
          Alcotest.test_case "agreement" `Quick test_naive_agrees_simple;
          Alcotest.test_case "unsat" `Quick test_naive_unsat;
          QCheck_alcotest.to_alcotest prop_naive_matches_quonto;
        ] );
      ( "cb",
        [
          Alcotest.test_case "concept hierarchy" `Quick test_cb_concept_hierarchy;
          Alcotest.test_case "role hierarchy incomplete" `Quick
            test_cb_role_hierarchy_incomplete;
          QCheck_alcotest.to_alcotest prop_cb_concepts_match_quonto_positive;
        ] );
      ( "personas",
        [
          Alcotest.test_case "agreement" `Quick test_personas_agree;
          Alcotest.test_case "unsat names" `Quick test_personas_unsat_names;
          Alcotest.test_case "enhanced traversal" `Quick
            test_enhanced_traversal_fewer_tests;
          Alcotest.test_case "timeout" `Slow test_persona_timeout;
          QCheck_alcotest.to_alcotest prop_personas_match_quonto;
        ] );
    ]
