(* Tests for SQL generation: the compiled statement's direct evaluation
   must agree with the generic CQ evaluator, and the printed text must
   have the expected surface shape. *)

module Cq = Obda.Cq
module Sql = Obda.Sql
module Database = Obda.Database
module Vabox = Obda.Vabox

let v x = Cq.Var x
let c x = Cq.Const x

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let db () =
  let db = Database.create () in
  Database.insert_all db "emp"
    [ [ "e1"; "ada"; "acme" ]; [ "e2"; "bob"; "acme" ]; [ "e3"; "cyd"; "init" ] ];
  Database.insert_all db "mgr" [ [ "e2" ] ];
  db

let sorted = List.sort compare

(* ------------------------------ printing ----------------------------- *)

let test_sql_text_simple () =
  let q = Cq.make [ "x" ] [ Cq.atom "mgr" [ v "x" ] ] in
  let sql = Sql.to_string (Sql.of_ucq [ q ]) in
  Alcotest.(check string) "simple select" "SELECT DISTINCT t0.c0 FROM mgr t0" sql

let test_sql_text_join () =
  let q =
    Cq.make [ "n" ] [ Cq.atom "emp" [ v "x"; v "n"; v "co" ]; Cq.atom "mgr" [ v "x" ] ]
  in
  let sql = Sql.to_string (Sql.of_ucq [ q ]) in
  Alcotest.(check bool) "both tables" true (contains sql "FROM emp t0, mgr t1");
  Alcotest.(check bool) "join condition" true (contains sql "t0.c0 = t1.c0")

let test_sql_text_constant () =
  let q = Cq.make [ "x" ] [ Cq.atom "emp" [ v "x"; v "n"; c "acme" ] ] in
  let sql = Sql.to_string (Sql.of_ucq [ q ]) in
  Alcotest.(check bool) "constant filter" true (contains sql "t0.c2 = 'acme'")

let test_sql_text_union () =
  let q1 = Cq.make [ "x" ] [ Cq.atom "mgr" [ v "x" ] ] in
  let q2 = Cq.make [ "x" ] [ Cq.atom "emp" [ v "x"; v "n"; v "co" ] ] in
  let sql = Sql.to_string (Sql.of_ucq [ q1; q2 ]) in
  Alcotest.(check bool) "union" true (contains sql "\nUNION\n")

let test_sql_text_boolean () =
  let q = Cq.make [] [ Cq.atom "mgr" [ v "x" ] ] in
  let sql = Sql.to_string (Sql.of_ucq [ q ]) in
  Alcotest.(check bool) "boolean projects a constant" true
    (contains sql "SELECT DISTINCT 1 FROM mgr t0")

let test_sql_text_empty_union () =
  Alcotest.(check string) "no-answer statement" "SELECT 1 WHERE 1 = 0"
    (Sql.to_string (Sql.of_ucq []))

let test_sql_escaping () =
  let q = Cq.make [ "x" ] [ Cq.atom "emp" [ v "x"; v "n"; c "o'brien" ] ] in
  let sql = Sql.to_string (Sql.of_ucq [ q ]) in
  Alcotest.(check bool) "quote doubled" true (contains sql "'o''brien'")

(* ----------------------------- evaluation ---------------------------- *)

let test_sql_eval_matches_cq () =
  let db = db () in
  let queries =
    [
      Cq.make [ "x" ] [ Cq.atom "mgr" [ v "x" ] ];
      Cq.make [ "n" ]
        [ Cq.atom "emp" [ v "x"; v "n"; v "co" ]; Cq.atom "mgr" [ v "x" ] ];
      Cq.make [ "x"; "y" ]
        [ Cq.atom "emp" [ v "x"; v "n"; v "co" ]; Cq.atom "emp" [ v "y"; v "m"; v "co" ] ];
      Cq.make [ "x" ] [ Cq.atom "emp" [ v "x"; v "n"; c "acme" ] ];
      Cq.make [] [ Cq.atom "mgr" [ v "x" ] ];
    ]
  in
  List.iter
    (fun q ->
      let via_cq = sorted (Cq.evaluate ~facts:(Database.facts db) q) in
      let via_sql = sorted (Sql.eval db (Sql.of_ucq [ q ])) in
      Alcotest.(check (list (list string))) (Cq.to_string q) via_cq via_sql)
    queries

let test_sql_eval_union_dedup () =
  let db = db () in
  let q1 = Cq.make [ "x" ] [ Cq.atom "mgr" [ v "x" ] ] in
  let q2 = Cq.make [ "x" ] [ Cq.atom "emp" [ v "x"; v "n"; c "acme" ] ] in
  let rows = sorted (Sql.eval db (Sql.of_ucq [ q1; q2 ])) in
  (* e2 appears in both branches but only once in the union *)
  Alcotest.(check (list (list string))) "union dedup" [ [ "e1" ]; [ "e2" ] ] rows

(* end-to-end: rewriting -> unfolding -> SQL -> evaluation *)
let test_sql_obda_pipeline () =
  let tbox =
    Dllite.Parser.tbox_of_string_exn
      {|
        role worksFor
        Manager [= Employee
      |}
  in
  let mappings =
    [
      Obda.Mapping.make
        ~source:(Cq.make [ "id" ] [ Cq.atom "emp" [ v "id"; v "n"; v "co" ] ])
        ~target:(Obda.Mapping.Concept_head ("Employee", v "id"));
      Obda.Mapping.make
        ~source:(Cq.make [ "id" ] [ Cq.atom "mgr" [ v "id" ] ])
        ~target:(Obda.Mapping.Concept_head ("Manager", v "id"));
    ]
  in
  let q = Cq.make [ "x" ] [ Cq.atom (Vabox.concept_pred "Employee") [ v "x" ] ] in
  let rewritten, _ = Obda.Rewrite.perfect_ref tbox [ q ] in
  let unfolded = Obda.Mapping.unfold_ucq mappings rewritten in
  let stmt = Sql.of_ucq unfolded in
  let db = db () in
  let via_sql = sorted (Sql.eval db stmt) in
  let via_engine =
    sorted
      (Obda.Engine.certain_answers
         (Obda.Engine.create ~tbox ~mappings ~database:db ())
         q)
  in
  Alcotest.(check (list (list string))) "pipeline agreement" via_engine via_sql;
  (* the SQL covers both mappings *)
  let text = Sql.to_string stmt in
  Alcotest.(check bool) "mentions emp" true (contains text "FROM emp");
  Alcotest.(check bool) "mentions mgr" true (contains text "FROM mgr")

(* property: SQL evaluation = CQ evaluation on random queries *)
let gen_query =
  QCheck.Gen.(
    let var = oneofl [ "x"; "y"; "z" ] in
    let atom =
      frequency
        [
          (2, map (fun t -> Cq.atom "mgr" [ Cq.Var t ]) var);
          ( 3,
            map3
              (fun t1 t2 t3 -> Cq.atom "emp" [ Cq.Var t1; Cq.Var t2; Cq.Var t3 ])
              var var var );
        ]
    in
    let* body = list_size (int_range 1 3) atom in
    let occurring =
      List.concat_map
        (fun a -> List.filter_map (function Cq.Var v -> Some v | _ -> None) a.Cq.args)
        body
      |> List.sort_uniq compare
    in
    let* keep = int_bound (List.length occurring) in
    return { Cq.answer_vars = List.filteri (fun i _ -> i < keep) occurring; Cq.body })

let prop_sql_matches_cq =
  QCheck.Test.make ~count:200 ~name:"SQL evaluation = CQ evaluation"
    (QCheck.make ~print:Cq.to_string gen_query)
    (fun q ->
      let db = db () in
      sorted (Sql.eval db (Sql.of_ucq [ q ]))
      = sorted (Cq.evaluate ~facts:(Database.facts db) q))

let () =
  Alcotest.run "sql"
    [
      ( "printing",
        [
          Alcotest.test_case "simple" `Quick test_sql_text_simple;
          Alcotest.test_case "join" `Quick test_sql_text_join;
          Alcotest.test_case "constant" `Quick test_sql_text_constant;
          Alcotest.test_case "union" `Quick test_sql_text_union;
          Alcotest.test_case "boolean" `Quick test_sql_text_boolean;
          Alcotest.test_case "empty union" `Quick test_sql_text_empty_union;
          Alcotest.test_case "escaping" `Quick test_sql_escaping;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "matches CQ engine" `Quick test_sql_eval_matches_cq;
          Alcotest.test_case "union dedup" `Quick test_sql_eval_union_dedup;
          Alcotest.test_case "obda pipeline" `Quick test_sql_obda_pipeline;
          QCheck_alcotest.to_alcotest prop_sql_matches_cq;
        ] );
    ]
