(* Tests for the ontology design patterns (Section 8): every pattern
   must entail its own intended consequences, compose cleanly, and
   render in the graphical language. *)

open Dllite


let check_holds name instance =
  match Patterns.verify instance with
  | [] -> ()
  | violated ->
    Alcotest.failf "%s: unfulfilled promises: %s" name
      (String.concat "; " (List.map Syntax.axiom_to_string violated))

let test_part_whole () =
  let i = Patterns.part_whole ~part:"County" ~whole:"State" () in
  check_holds "part-whole" i;
  (* the instance contains the Figure-2 qualified existential *)
  Alcotest.(check bool) "figure-2 axiom" true
    (Tbox.mem
       (Syntax.Concept_incl
          (Syntax.Atomic "County", Syntax.C_exists_qual (Syntax.Direct "isPartOf", "State")))
       i.Patterns.tbox)

let test_part_whole_custom_role () =
  let i = Patterns.part_whole ~part:"Wheel" ~whole:"Car" ~role:"componentOf" () in
  check_holds "part-whole custom" i;
  Alcotest.(check bool) "role renamed" true
    (Signature.mem_role "componentOf" (Tbox.signature i.Patterns.tbox))

let test_temporal_snapshot () =
  let i = Patterns.temporal_snapshot ~entity:"Contract" () in
  check_holds "temporal" i;
  let s = Tbox.signature i.Patterns.tbox in
  Alcotest.(check bool) "snapshot concept" true
    (Signature.mem_concept "ContractSnapshot" s);
  Alcotest.(check bool) "validity attrs" true
    (Signature.mem_attribute "validFrom" s && Signature.mem_attribute "validTo" s);
  (* snapshots are never entities *)
  let d = Quonto.Deductive.compute i.Patterns.tbox in
  Alcotest.(check bool) "disjoint" true
    (Quonto.Deductive.entails_disjoint d
       (Syntax.E_concept (Syntax.Atomic "ContractSnapshot"))
       (Syntax.E_concept (Syntax.Atomic "Contract")))

let test_qualified_relationship () =
  let i =
    Patterns.qualified_relationship ~name:"Employment" ~source:"Person"
      ~target:"Organization" ()
  in
  check_holds "qualified relationship" i;
  Alcotest.(check bool) "reified roles" true
    (Signature.mem_role "employmentSource" (Tbox.signature i.Patterns.tbox))

let test_partition () =
  let i =
    Patterns.partition ~parent:"Customer"
      ~cases:[ "Business"; "Residential"; "Government" ] ()
  in
  check_holds "partition" i;
  let d = Quonto.Deductive.compute i.Patterns.tbox in
  (* pairwise disjointness including the symmetric direction *)
  Alcotest.(check bool) "Government disjoint Business" true
    (Quonto.Deductive.entails_disjoint d
       (Syntax.E_concept (Syntax.Atomic "Government"))
       (Syntax.E_concept (Syntax.Atomic "Business")));
  (* coherence: no case is unsatisfiable *)
  let cls = Quonto.Classify.classify i.Patterns.tbox in
  Alcotest.(check bool) "coherent" true (Quonto.Unsat.coherent (Quonto.Classify.unsat cls))

let test_composition () =
  (* compose patterns into one design and keep all promises *)
  let design =
    List.fold_left Patterns.apply Tbox.empty
      [
        Patterns.part_whole ~part:"County" ~whole:"State" ();
        Patterns.partition ~parent:"Region" ~cases:[ "County"; "State" ] ();
      ]
  in
  let d = Quonto.Deductive.compute design in
  (* promises of both patterns hold in the composition *)
  Alcotest.(check bool) "part-whole survives" true
    (Quonto.Deductive.entails d
       (Syntax.Concept_incl
          (Syntax.Atomic "County", Syntax.C_exists_qual (Syntax.Direct "isPartOf", "State"))));
  Alcotest.(check bool) "partition survives" true
    (Quonto.Deductive.entails d
       (Syntax.Concept_incl (Syntax.Atomic "County", Syntax.C_neg (Syntax.Atomic "State"))));
  (* and the composition stays coherent *)
  let cls = Quonto.Classify.classify design in
  Alcotest.(check bool) "coherent composition" true
    (Quonto.Unsat.coherent (Quonto.Classify.unsat cls))

let test_all_patterns_diagram () =
  List.iter
    (fun i ->
      let d = Patterns.diagram i in
      Graphical.Diagram.validate d;
      let elements, _, _ = Graphical.Diagram.stats d in
      Alcotest.(check bool) (i.Patterns.pattern ^ " diagram nonempty") true (elements > 0))
    [
      Patterns.part_whole ~part:"A" ~whole:"B" ();
      Patterns.temporal_snapshot ~entity:"E" ();
      Patterns.qualified_relationship ~name:"R" ~source:"S" ~target:"T" ();
      Patterns.partition ~parent:"P" ~cases:[ "X"; "Y" ] ();
    ]

let test_all_patterns_verified () =
  (* belt-and-braces: every stock instantiation passes verify *)
  List.iter
    (fun i -> check_holds i.Patterns.pattern i)
    [
      Patterns.part_whole ~part:"A" ~whole:"B" ();
      Patterns.temporal_snapshot ~entity:"E" ();
      Patterns.qualified_relationship ~name:"R" ~source:"S" ~target:"T" ();
      Patterns.partition ~parent:"P" ~cases:[ "X"; "Y"; "Z" ] ();
    ]

let () =
  Alcotest.run "patterns"
    [
      ( "instances",
        [
          Alcotest.test_case "part-whole" `Quick test_part_whole;
          Alcotest.test_case "part-whole custom role" `Quick test_part_whole_custom_role;
          Alcotest.test_case "temporal snapshot" `Quick test_temporal_snapshot;
          Alcotest.test_case "qualified relationship" `Quick test_qualified_relationship;
          Alcotest.test_case "partition" `Quick test_partition;
        ] );
      ( "composition",
        [
          Alcotest.test_case "composition" `Quick test_composition;
          Alcotest.test_case "diagrams" `Quick test_all_patterns_diagram;
          Alcotest.test_case "all verified" `Quick test_all_patterns_verified;
        ] );
    ]
