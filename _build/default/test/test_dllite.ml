(* Tests for the DL-Lite syntax, signatures, TBoxes and the parser. *)

open Dllite

let axiom = Alcotest.testable Syntax.pp_axiom Syntax.equal_axiom

(* ------------------------------ syntax ------------------------------- *)

let test_role_inverse () =
  Alcotest.(check string) "inv name" "p"
    (Syntax.role_name (Syntax.role_inverse (Syntax.Direct "p")));
  Alcotest.(check bool) "double inverse" true
    (Syntax.equal_role (Syntax.Direct "p")
       (Syntax.role_inverse (Syntax.role_inverse (Syntax.Direct "p"))))

let test_is_positive () =
  Alcotest.(check bool) "PI" true
    (Syntax.is_positive
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Atomic "B"))));
  Alcotest.(check bool) "NI" false
    (Syntax.is_positive
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_neg (Syntax.Atomic "B"))));
  Alcotest.(check bool) "qualified is positive" true
    (Syntax.is_positive
       (Syntax.Concept_incl
          (Syntax.Atomic "A", Syntax.C_exists_qual (Syntax.Direct "p", "B"))));
  Alcotest.(check bool) "role NI" false
    (Syntax.is_positive
       (Syntax.Role_incl (Syntax.Direct "p", Syntax.R_neg (Syntax.Direct "q"))))

let test_printing () =
  Alcotest.(check string) "qualified existential"
    "County [= exists isPartOf . State"
    (Syntax.axiom_to_string
       (Syntax.Concept_incl
          (Syntax.Atomic "County", Syntax.C_exists_qual (Syntax.Direct "isPartOf", "State"))));
  Alcotest.(check string) "inverse existential" "State [= exists isPartOf^- . County"
    (Syntax.axiom_to_string
       (Syntax.Concept_incl
          ( Syntax.Atomic "State",
            Syntax.C_exists_qual (Syntax.Inverse "isPartOf", "County") )));
  Alcotest.(check string) "negation" "A [= not exists p"
    (Syntax.axiom_to_string
       (Syntax.Concept_incl
          (Syntax.Atomic "A", Syntax.C_neg (Syntax.Exists (Syntax.Direct "p")))))

(* ----------------------------- signature ----------------------------- *)

let test_signature_extraction () =
  let ax =
    Syntax.Concept_incl
      (Syntax.Exists (Syntax.Direct "p"), Syntax.C_exists_qual (Syntax.Inverse "q", "A"))
  in
  let s = Signature.of_axiom ax in
  Alcotest.(check (list string)) "concepts" [ "A" ] (Signature.concepts s);
  Alcotest.(check (list string)) "roles" [ "p"; "q" ] (Signature.roles s);
  Alcotest.(check (list string)) "attrs" [] (Signature.attributes s)

let test_signature_attr () =
  let ax = Syntax.Attr_incl ("u", Syntax.A_neg "v") in
  let s = Signature.of_axiom ax in
  Alcotest.(check (list string)) "attrs" [ "u"; "v" ] (Signature.attributes s)

(* ------------------------------- tbox -------------------------------- *)

let test_tbox_dedup () =
  let ax = Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Atomic "B")) in
  let t = Tbox.of_axioms [ ax; ax; ax ] in
  Alcotest.(check int) "dedup" 1 (Tbox.axiom_count t)

let test_tbox_split () =
  let pi = Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Atomic "B")) in
  let ni = Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_neg (Syntax.Atomic "C")) in
  let t = Tbox.of_axioms [ pi; ni ] in
  Alcotest.(check (list axiom)) "positive" [ pi ] (Tbox.positive_inclusions t);
  Alcotest.(check (list axiom)) "negative" [ ni ] (Tbox.negative_inclusions t)

let test_tbox_declarations () =
  let t = Tbox.empty |> Tbox.declare_concept "Lonely" in
  Alcotest.(check bool) "declared" true
    (Signature.mem_concept "Lonely" (Tbox.signature t));
  Alcotest.(check int) "no axioms" 0 (Tbox.axiom_count t)

(* ------------------------------- parser ------------------------------ *)

let parse s =
  match Parser.tbox_of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parse_figure2 () =
  (* the two axioms of Figure 2 of the paper *)
  let t =
    parse
      {|
        # Figure 2: qualified existential restrictions
        concept County
        concept State
        role isPartOf
        County [= exists isPartOf . State
        State [= exists isPartOf^- . County
      |}
  in
  Alcotest.(check int) "two axioms" 2 (Tbox.axiom_count t);
  Alcotest.(check bool) "first axiom" true
    (Tbox.mem
       (Syntax.Concept_incl
          (Syntax.Atomic "County", Syntax.C_exists_qual (Syntax.Direct "isPartOf", "State")))
       t);
  Alcotest.(check bool) "second axiom" true
    (Tbox.mem
       (Syntax.Concept_incl
          ( Syntax.Atomic "State",
            Syntax.C_exists_qual (Syntax.Inverse "isPartOf", "County") ))
       t)

let test_parse_sort_inference () =
  let t =
    parse
      {|
        role worksFor
        worksFor [= memberOf
        Employee [= exists worksFor
        exists worksFor^- [= Company
      |}
  in
  Alcotest.(check bool) "role incl" true
    (Tbox.mem
       (Syntax.Role_incl (Syntax.Direct "worksFor", Syntax.R_role (Syntax.Direct "memberOf")))
       t);
  Alcotest.(check bool) "memberOf became a role" true
    (Signature.mem_role "memberOf" (Tbox.signature t));
  Alcotest.(check bool) "Employee is a concept" true
    (Signature.mem_concept "Employee" (Tbox.signature t))

let test_parse_negations () =
  let t =
    parse {|
      A [= not B
      p [= not q
      attr u
      attr v
      u [= not v
    |}
  in
  Alcotest.(check bool) "concept NI" true
    (Tbox.mem (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_neg (Syntax.Atomic "B"))) t);
  Alcotest.(check bool) "role NI — p defaults to concept without declaration" false
    (Tbox.mem (Syntax.Role_incl (Syntax.Direct "p", Syntax.R_neg (Syntax.Direct "q"))) t);
  Alcotest.(check bool) "attr NI" true
    (Tbox.mem (Syntax.Attr_incl ("u", Syntax.A_neg "v")) t)

let test_parse_delta () =
  let t = parse {|
    attr salary
    delta(salary) [= Employee
  |} in
  Alcotest.(check bool) "attr domain" true
    (Tbox.mem
       (Syntax.Concept_incl (Syntax.Attr_domain "salary", Syntax.C_basic (Syntax.Atomic "Employee")))
       t)

let test_parse_errors () =
  (match Parser.tbox_of_string "A [= exists" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected parse error");
  (match Parser.tbox_of_string "A ⊑ B" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected lex error on unicode");
  match Parser.tbox_of_string "concept A\nrole A" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected sort clash error"

let test_parse_roundtrip () =
  (* print a TBox, re-parse it, and compare axiom sets *)
  let t =
    parse
      {|
        concept A
        concept B
        role p
        attr u
        A [= B
        A [= exists p . B
        exists p^- [= B
        delta(u) [= A
        u [= u'
        p [= p'
        A [= not exists p
      |}
  in
  (* sorts of u' and p' were inferred from their left-hand sides *)
  let printed = Format.asprintf "%a" Tbox.pp t in
  let reparse_source =
    (* re-declare the full signature; printing does not emit decls *)
    let sig_decls =
      let s = Tbox.signature t in
      String.concat "\n"
        (List.map (Printf.sprintf "concept %s") (Signature.concepts s)
        @ List.map (Printf.sprintf "role %s") (Signature.roles s)
        @ List.map (Printf.sprintf "attr %s") (Signature.attributes s))
    in
    sig_decls ^ "\n" ^ printed
  in
  let t' = parse reparse_source in
  Alcotest.(check bool) "roundtrip" true (Tbox.equal t t')

(* printer/parser fuzz: any generated TBox survives print -> reparse *)
let prop_print_parse_roundtrip =
  QCheck.Test.make ~count:300 ~name:"printer/parser roundtrip"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      let t = Ontgen.Qgen.tbox_of_axioms axioms in
      let source =
        let s = Tbox.signature t in
        String.concat "\n"
          (List.map (Printf.sprintf "concept %s") (Signature.concepts s)
          @ List.map (Printf.sprintf "role %s") (Signature.roles s)
          @ List.map (Printf.sprintf "attr %s") (Signature.attributes s))
        ^ "\n"
        ^ Format.asprintf "%a" Tbox.pp t
      in
      match Parser.tbox_of_string source with
      | Ok t' -> Tbox.equal t t'
      | Error _ -> false)

(* ------------------------------- abox -------------------------------- *)

let test_abox () =
  let a =
    Abox.of_list
      [
        Abox.Concept_assert ("Person", "alice");
        Abox.Role_assert ("knows", "alice", "bob");
        Abox.Attr_assert ("age", "alice", "30");
      ]
  in
  Alcotest.(check int) "size" 3 (Abox.size a);
  Alcotest.(check (list string)) "individuals" [ "alice"; "bob" ] (Abox.individuals a);
  Alcotest.(check (list string)) "members" [ "alice" ] (Abox.concept_members a "Person");
  Alcotest.(check (list (pair string string))) "role pairs" [ ("alice", "bob") ]
    (Abox.role_members a "knows")

let test_abox_parse () =
  let a = Parser.parse_abox {|
    Person(alice)
    knows(alice, bob)
    attr age(alice, thirty)
  |} in
  Alcotest.(check int) "parsed size" 3 (Abox.size a);
  Alcotest.(check bool) "role" true (Abox.mem (Abox.Role_assert ("knows", "alice", "bob")) a)

let () =
  Alcotest.run "dllite"
    [
      ( "syntax",
        [
          Alcotest.test_case "role inverse" `Quick test_role_inverse;
          Alcotest.test_case "polarity" `Quick test_is_positive;
          Alcotest.test_case "printing" `Quick test_printing;
        ] );
      ( "signature",
        [
          Alcotest.test_case "extraction" `Quick test_signature_extraction;
          Alcotest.test_case "attributes" `Quick test_signature_attr;
        ] );
      ( "tbox",
        [
          Alcotest.test_case "dedup" `Quick test_tbox_dedup;
          Alcotest.test_case "positive/negative split" `Quick test_tbox_split;
          Alcotest.test_case "declarations" `Quick test_tbox_declarations;
        ] );
      ( "parser",
        [
          Alcotest.test_case "figure 2" `Quick test_parse_figure2;
          Alcotest.test_case "sort inference" `Quick test_parse_sort_inference;
          Alcotest.test_case "negations" `Quick test_parse_negations;
          Alcotest.test_case "attribute domain" `Quick test_parse_delta;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
        ] );
      ( "abox",
        [
          Alcotest.test_case "assertions" `Quick test_abox;
          Alcotest.test_case "parsing" `Quick test_abox_parse;
        ] );
    ]
