(* Tests for extensional constraints (functionality, identification),
   their well-formedness, parsing, engine integration and mapping
   analysis. *)

open Dllite
module Integrity = Obda.Integrity
module Cq = Obda.Cq

let parse_doc s =
  match Parser.parse_document s with
  | r -> r
  | exception Parser.Parse_error { line; message } ->
    Alcotest.failf "parse error line %d: %s" line message

(* ------------------------------ parsing ------------------------------ *)

let test_parse_constraints () =
  let _tbox, constraints =
    parse_doc
      {|
        role hasHead
        attr ssn
        Team [= exists hasHead
        funct hasHead
        funct hasHead^-
        funct attr ssn
        id Person ssn_of
      |}
  in
  Alcotest.(check int) "four constraints" 4 (List.length constraints);
  Alcotest.(check bool) "funct role" true
    (List.mem (Constraints.Funct_role (Syntax.Direct "hasHead")) constraints);
  Alcotest.(check bool) "funct inverse" true
    (List.mem (Constraints.Funct_role (Syntax.Inverse "hasHead")) constraints);
  Alcotest.(check bool) "funct attr" true
    (List.mem (Constraints.Funct_attr "ssn") constraints);
  Alcotest.(check bool) "identification" true
    (List.mem
       (Constraints.Identification ("Person", [ Syntax.Direct "ssn_of" ]))
       constraints)

let test_parse_tbox_drops_constraints () =
  let t = Parser.parse_tbox {|
    role p
    funct p
    A [= exists p
  |} in
  Alcotest.(check int) "axioms only" 1 (Tbox.axiom_count t)

(* --------------------------- well-formedness ------------------------- *)

let test_well_formed () =
  let tbox = Parser.parse_tbox {|
    role p
    role q
    p [= q
  |} in
  (* q has the proper sub-role p: (funct q) is inadmissible *)
  Alcotest.(check int) "inadmissible" 1
    (List.length
       (Constraints.well_formed tbox [ Constraints.Funct_role (Syntax.Direct "q") ]));
  (* p has no sub-roles: fine *)
  Alcotest.(check int) "admissible" 0
    (List.length
       (Constraints.well_formed tbox [ Constraints.Funct_role (Syntax.Direct "p") ]));
  (* empty identification path list is rejected *)
  Alcotest.(check int) "empty id" 1
    (List.length
       (Constraints.well_formed tbox [ Constraints.Identification ("A", []) ]))

let test_engine_rejects_inadmissible () =
  let tbox = Parser.parse_tbox {|
    role p
    role q
    p [= q
  |} in
  match
    Obda.Engine.create
      ~constraints:[ Constraints.Funct_role (Syntax.Direct "q") ]
      ~tbox ~mappings:[] ~database:(Obda.Database.create ()) ()
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ----------------------------- integrity ----------------------------- *)

let facts_of assertions = Obda.Vabox.facts_of_abox (Abox.of_list assertions)

let test_funct_role_violation () =
  let facts =
    facts_of
      [
        Abox.Role_assert ("hasHead", "team1", "ada");
        Abox.Role_assert ("hasHead", "team1", "bob");
        Abox.Role_assert ("hasHead", "team2", "cyd");
      ]
  in
  let violations =
    Integrity.check ~facts [ Constraints.Funct_role (Syntax.Direct "hasHead") ]
  in
  (match violations with
   | [ v ] ->
     Alcotest.(check string) "witness" "team1" v.Integrity.witness;
     Alcotest.(check (list string)) "fillers" [ "ada"; "bob" ] v.Integrity.values
   | other -> Alcotest.failf "expected one violation, got %d" (List.length other));
  (* inverse functionality is a different constraint and holds here *)
  Alcotest.(check bool) "inverse ok" true
    (Integrity.satisfied ~facts [ Constraints.Funct_role (Syntax.Inverse "hasHead") ])

let test_funct_inverse_violation () =
  let facts =
    facts_of
      [
        Abox.Role_assert ("memberOf", "ada", "team1");
        Abox.Role_assert ("memberOf", "bob", "team1");
      ]
  in
  (* memberOf itself is functional here (each member one team)... *)
  Alcotest.(check bool) "direct ok" true
    (Integrity.satisfied ~facts [ Constraints.Funct_role (Syntax.Direct "memberOf") ]);
  (* ...but its inverse is not (a team with two members) *)
  Alcotest.(check bool) "inverse violated" false
    (Integrity.satisfied ~facts [ Constraints.Funct_role (Syntax.Inverse "memberOf") ])

let test_funct_attr_violation () =
  let facts =
    facts_of
      [
        Abox.Attr_assert ("ssn", "ada", "111");
        Abox.Attr_assert ("ssn", "ada", "222");
      ]
  in
  Alcotest.(check int) "violated" 1
    (List.length (Integrity.check ~facts [ Constraints.Funct_attr "ssn" ]))

let test_identification () =
  let facts =
    facts_of
      [
        Abox.Concept_assert ("Person", "ada");
        Abox.Concept_assert ("Person", "bob");
        Abox.Role_assert ("hasSsn", "ada", "111");
        Abox.Role_assert ("hasSsn", "bob", "111");
        Abox.Concept_assert ("Person", "cyd");
        Abox.Role_assert ("hasSsn", "cyd", "333");
      ]
  in
  let id = Constraints.Identification ("Person", [ Syntax.Direct "hasSsn" ]) in
  (match Integrity.check ~facts [ id ] with
   | [ v ] ->
     Alcotest.(check string) "first of pair" "ada" v.Integrity.witness;
     Alcotest.(check (list string)) "second of pair" [ "bob" ] v.Integrity.values
   | other -> Alcotest.failf "expected one violation, got %d" (List.length other));
  (* two-path identification: sharing only one path is fine *)
  let id2 =
    Constraints.Identification
      ("Person", [ Syntax.Direct "hasSsn"; Syntax.Direct "bornIn" ])
  in
  Alcotest.(check bool) "two paths not both shared" true
    (Integrity.satisfied ~facts [ id2 ])

let test_engine_integrity () =
  let tbox, constraints =
    parse_doc {|
      role hasHead
      Team [= exists hasHead
      funct hasHead
    |}
  in
  let db = Obda.Database.create () in
  Obda.Database.insert_all db "teams"
    [ [ "t1"; "ada" ]; [ "t1"; "bob" ]; [ "t2"; "cyd" ] ];
  let v x = Cq.Var x in
  let mappings =
    [
      Obda.Mapping.make
        ~source:(Cq.make [ "t"; "h" ] [ Cq.atom "teams" [ v "t"; v "h" ] ])
        ~target:(Obda.Mapping.Role_head ("hasHead", v "t", v "h"));
    ]
  in
  let sys = Obda.Engine.create ~constraints ~tbox ~mappings ~database:db () in
  match Obda.Engine.integrity_violations sys with
  | [ viol ] -> Alcotest.(check string) "witness t1" "t1" viol.Integrity.witness
  | other -> Alcotest.failf "expected one violation, got %d" (List.length other)

(* -------------------------- mapping analysis ------------------------- *)

module Analysis = Obda.Mapping_analysis

let test_mapping_analysis () =
  let tbox =
    Parser.parse_tbox
      {|
        role worksFor
        Ghost [= A
        Ghost [= not A
        Manager [= Employee
      |}
  in
  let v x = Cq.Var x in
  let wide = Cq.make [ "id" ] [ Cq.atom "emp" [ v "id"; v "n" ] ] in
  let narrow =
    Cq.make [ "id" ] [ Cq.atom "emp" [ v "id"; v "n" ]; Cq.atom "mgr" [ v "id" ] ]
  in
  let mappings =
    [
      (* 0: populates an unsatisfiable concept *)
      Obda.Mapping.make ~source:wide ~target:(Obda.Mapping.Concept_head ("Ghost", v "id"));
      (* 1: wide Employee mapping *)
      Obda.Mapping.make ~source:wide
        ~target:(Obda.Mapping.Concept_head ("Employee", v "id"));
      (* 2: narrower Employee mapping — redundant w.r.t. 1 *)
      Obda.Mapping.make ~source:narrow
        ~target:(Obda.Mapping.Concept_head ("Employee", v "id"));
    ]
  in
  let issues = Analysis.analyze tbox mappings in
  Alcotest.(check bool) "unsat target flagged" true
    (List.exists
       (function Analysis.Maps_unsat_predicate (0, _) -> true | _ -> false)
       issues);
  Alcotest.(check bool) "redundancy flagged" true
    (List.mem (Analysis.Redundant (2, 1)) issues);
  Alcotest.(check bool) "wide one not flagged" false
    (List.exists (function Analysis.Redundant (1, _) -> true | _ -> false) issues);
  Alcotest.(check bool) "unmapped names reported" true
    (List.exists
       (function
         | Analysis.Unmapped (Syntax.E_role (Syntax.Direct "worksFor")) -> true
         | _ -> false)
       issues);
  Alcotest.(check int) "errors = unsat target only" 1
    (List.length (Analysis.errors issues))

let () =
  Alcotest.run "integrity"
    [
      ( "parsing",
        [
          Alcotest.test_case "constraint lines" `Quick test_parse_constraints;
          Alcotest.test_case "tbox view drops them" `Quick
            test_parse_tbox_drops_constraints;
        ] );
      ( "wellformedness",
        [
          Alcotest.test_case "admissibility" `Quick test_well_formed;
          Alcotest.test_case "engine rejects" `Quick test_engine_rejects_inadmissible;
        ] );
      ( "checking",
        [
          Alcotest.test_case "functional role" `Quick test_funct_role_violation;
          Alcotest.test_case "functional inverse" `Quick test_funct_inverse_violation;
          Alcotest.test_case "functional attribute" `Quick test_funct_attr_violation;
          Alcotest.test_case "identification" `Quick test_identification;
          Alcotest.test_case "engine integration" `Quick test_engine_integrity;
        ] );
      ( "mapping analysis",
        [ Alcotest.test_case "issue report" `Quick test_mapping_analysis ] );
    ]
