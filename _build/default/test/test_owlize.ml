(* Tests for the OWL extension of the graphical language: labelled
   (universality/cardinality) squares, translation to/from the ALCHI
   fragment, and rendering. *)

module O = Owlfrag.Osyntax
module Diagram = Graphical.Diagram
module Owlize = Graphical.Owlize
module Translate = Graphical.Translate

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let axiom = Alcotest.testable O.pp_axiom O.equal_axiom

(* hand-build: Employee ⊑ ∀heads.Team  (universal square with scope) *)
let universal_diagram () =
  let b = Diagram.builder () in
  let employee = Diagram.concept b "Employee" in
  let team = Diagram.concept b "Team" in
  let heads = Diagram.role b "heads" in
  let square = Diagram.add_element b (Diagram.Universal_square (heads, false)) in
  Diagram.scope b ~square ~concept:team;
  Diagram.include_ b ~source:employee ~target:square;
  Diagram.finish b

let test_universal_square () =
  let d = universal_diagram () in
  Diagram.validate d;
  Alcotest.(check (list axiom)) "universal axiom"
    [ O.Sub (O.Name "Employee", O.All (O.Named "heads", O.Name "Team")) ]
    (Owlize.to_owl d)

let test_range_side_universal () =
  let b = Diagram.builder () in
  let team = Diagram.concept b "Team" in
  let person = Diagram.concept b "Person" in
  let heads = Diagram.role b "heads" in
  (* black ∀-square: ∀heads⁻ *)
  let square = Diagram.add_element b (Diagram.Universal_square (heads, true)) in
  Diagram.scope b ~square ~concept:person;
  Diagram.include_ b ~source:team ~target:square;
  Alcotest.(check (list axiom)) "inverse universal"
    [ O.Sub (O.Name "Team", O.All (O.Inv "heads", O.Name "Person")) ]
    (Owlize.to_owl (Diagram.finish b))

let test_cardinality_square () =
  let b = Diagram.builder () in
  let committee = Diagram.concept b "Committee" in
  let has_member = Diagram.role b "hasMember" in
  let one = Diagram.add_element b (Diagram.Cardinality_square (has_member, false, 1)) in
  Diagram.include_ b ~source:committee ~target:one;
  (* >= 1 is the plain existential *)
  Alcotest.(check (list axiom)) "card 1 = exists"
    [ O.Sub (O.Name "Committee", O.Some_ (O.Named "hasMember", O.Top)) ]
    (Owlize.to_owl (Diagram.finish b));
  (* >= 2 is beyond the ALCHI target: rejected with a message *)
  let b2 = Diagram.builder () in
  let c = Diagram.concept b2 "Committee" in
  let r = Diagram.role b2 "hasMember" in
  let two = Diagram.add_element b2 (Diagram.Cardinality_square (r, false, 2)) in
  Diagram.include_ b2 ~source:c ~target:two;
  match Owlize.to_owl (Diagram.finish b2) with
  | _ -> Alcotest.fail "expected Untranslatable"
  | exception Owlize.Untranslatable _ -> ()

let test_dllite_translate_rejects_extension () =
  let d = universal_diagram () in
  match Translate.to_tbox d with
  | _ -> Alcotest.fail "DL-Lite translation must reject OWL squares"
  | exception Translate.Untranslatable _ -> ()

let test_negated_edge () =
  let b = Diagram.builder () in
  let a = Diagram.concept b "A" in
  let heads = Diagram.role b "heads" in
  let square = Diagram.add_element b (Diagram.Universal_square (heads, false)) in
  Diagram.include_ ~negated:true b ~source:a ~target:square;
  Alcotest.(check (list axiom)) "negated universal"
    [ O.Sub (O.Name "A", O.Not (O.All (O.Named "heads", O.Top))) ]
    (Owlize.to_owl (Diagram.finish b))

let test_of_owl_roundtrip () =
  let tbox =
    [
      O.Sub (O.Name "Manager", O.Some_ (O.Named "heads", O.Name "Team"));
      O.Sub (O.Name "Employee", O.All (O.Named "worksFor", O.Name "Org"));
      O.Sub (O.Some_ (O.Inv "heads", O.Top), O.Name "Team");
      O.Role_sub (O.Named "heads", O.Named "worksFor");
      O.Role_disjoint (O.Named "likes", O.Named "dislikes");
      O.Sub (O.Name "Org", O.Not (O.Name "Person"));
    ]
  in
  let d = Owlize.of_owl tbox in
  Diagram.validate d;
  let back = Owlize.to_owl d in
  List.iter
    (fun ax ->
      Alcotest.(check bool)
        (Format.asprintf "%a preserved" O.pp_axiom ax)
        true
        (List.mem ax back))
    tbox;
  Alcotest.(check int) "same axiom count" (List.length tbox) (List.length back)

let test_of_owl_rejects_undrawable () =
  match Owlize.of_owl [ O.Sub (O.Name "A", O.Or (O.Name "B", O.Name "C")) ] with
  | _ -> Alcotest.fail "expected rejection"
  | exception Owlize.Untranslatable _ -> ()

let test_rendering_extension () =
  let d = universal_diagram () in
  let dot = Graphical.Dot.render d in
  Alcotest.(check bool) "dot universal label" true (contains dot "label=\"∀\"");
  let svg = Graphical.Layout.to_svg d in
  Alcotest.(check bool) "svg universal entity" true (contains svg "&#8704;")

let () =
  Alcotest.run "owlize"
    [
      ( "to_owl",
        [
          Alcotest.test_case "universal square" `Quick test_universal_square;
          Alcotest.test_case "range-side universal" `Quick test_range_side_universal;
          Alcotest.test_case "cardinality labels" `Quick test_cardinality_square;
          Alcotest.test_case "DL-Lite view rejects" `Quick
            test_dllite_translate_rejects_extension;
          Alcotest.test_case "negated edges" `Quick test_negated_edge;
        ] );
      ( "of_owl",
        [
          Alcotest.test_case "roundtrip" `Quick test_of_owl_roundtrip;
          Alcotest.test_case "rejects undrawable" `Quick test_of_owl_rejects_undrawable;
        ] );
      ( "rendering",
        [ Alcotest.test_case "labelled squares" `Quick test_rendering_extension ] );
    ]
