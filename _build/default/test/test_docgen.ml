(* Tests for the automated documentation generator (Section 8). *)

open Dllite

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let parse s =
  match Parser.tbox_of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" e

let company =
  {|
    role worksFor
    attr salary
    Manager [= Employee
    Employee [= Person
    Employee [= exists worksFor
    exists worksFor [= Employee
    exists worksFor^- [= Organization
    delta(salary) [= Employee
    Person [= not Organization
  |}

let doc () = Docgen.generate ~title:"Company ontology" (parse company)

let test_overview () =
  let md = Docgen.to_markdown (doc ()) in
  Alcotest.(check bool) "title" true (contains md "# Company ontology");
  Alcotest.(check bool) "statistics" true (contains md "over 4 concepts, 1 roles");
  Alcotest.(check bool) "coherence" true (contains md "the ontology is coherent")

let test_taxonomy_section () =
  let md = Docgen.to_markdown (doc ()) in
  Alcotest.(check bool) "taxonomy fencing" true (contains md "```");
  (* indented tree: Employee under Person *)
  Alcotest.(check bool) "tree shape" true (contains md "Person\n  Employee")

let test_concept_sections () =
  let md = Docgen.to_markdown (doc ()) in
  Alcotest.(check bool) "manager section" true (contains md "### Manager");
  Alcotest.(check bool) "direct supers listed" true
    (contains md "direct superconcepts: [Employee](#employee)");
  Alcotest.(check bool) "disjointness listed" true
    (contains md "disjoint with: [Organization](#organization)");
  Alcotest.(check bool) "participation" true
    (contains md "mandatory participation in worksFor");
  Alcotest.(check bool) "attribute carrier" true
    (contains md "carrier of attribute salary")

let test_role_glossary () =
  let md = Docgen.to_markdown (doc ()) in
  Alcotest.(check bool) "role entry" true (contains md "`worksFor`");
  Alcotest.(check bool) "domain" true (contains md "domain Employee");
  Alcotest.(check bool) "range" true (contains md "range Organization")

let test_annotations () =
  let d =
    Docgen.generate
      ~annotations:
        [ ("Manager", "Someone who heads a team."); ("worksFor", "Employment link.") ]
      (parse company)
  in
  let md = Docgen.to_markdown d in
  Alcotest.(check bool) "concept annotation" true
    (contains md "Someone who heads a team.");
  Alcotest.(check bool) "role annotation" true (contains md "Employment link.")

let test_unsat_warning () =
  let d = Docgen.generate (parse {|
    Bad [= Good
    Bad [= not Good
  |}) in
  let md = Docgen.to_markdown d in
  Alcotest.(check bool) "overview warning" true
    (contains md "WARNING: the ontology has unsatisfiable predicates");
  Alcotest.(check bool) "per-concept warning" true
    (contains md "this concept is unsatisfiable")

let test_html_rendering () =
  let html = Docgen.to_html (doc ()) in
  Alcotest.(check bool) "doctype" true (contains html "<!DOCTYPE html>");
  Alcotest.(check bool) "heading anchor" true (contains html "<h3 id=\"manager\">");
  Alcotest.(check bool) "links" true (contains html "<a href=\"#employee\">");
  Alcotest.(check bool) "escaping" true (not (contains html "<Person>"))

let test_html_escapes_content () =
  let t = Tbox.of_axioms [] |> Tbox.declare_concept "Ampersand" in
  let d =
    Docgen.generate ~annotations:[ ("Ampersand", "a < b & c") ] ~title:"t" t
  in
  let html = Docgen.to_html d in
  Alcotest.(check bool) "escaped" true (contains html "a &lt; b &amp; c")

let () =
  Alcotest.run "docgen"
    [
      ( "markdown",
        [
          Alcotest.test_case "overview" `Quick test_overview;
          Alcotest.test_case "taxonomy" `Quick test_taxonomy_section;
          Alcotest.test_case "concept sections" `Quick test_concept_sections;
          Alcotest.test_case "role glossary" `Quick test_role_glossary;
          Alcotest.test_case "annotations" `Quick test_annotations;
          Alcotest.test_case "unsat warnings" `Quick test_unsat_warning;
        ] );
      ( "html",
        [
          Alcotest.test_case "rendering" `Quick test_html_rendering;
          Alcotest.test_case "escaping" `Quick test_html_escapes_content;
        ] );
    ]
