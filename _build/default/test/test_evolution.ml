(* Tests for the ontology-evolution diff (syntactic + semantic). *)

open Dllite


let parse s =
  match Parser.tbox_of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" e

let axiom = Alcotest.testable Syntax.pp_axiom Syntax.equal_axiom

let test_syntactic_diff () =
  let prev = parse {|
    A [= B
    B [= C
  |} in
  let next = parse {|
    A [= B
    B [= D
  |} in
  let r = Evolution.diff ~prev ~next in
  Alcotest.(check (list axiom)) "added"
    [ Syntax.Concept_incl (Syntax.Atomic "B", Syntax.C_basic (Syntax.Atomic "D")) ]
    r.Evolution.syntactic.Evolution.added_axioms;
  Alcotest.(check (list axiom)) "removed"
    [ Syntax.Concept_incl (Syntax.Atomic "B", Syntax.C_basic (Syntax.Atomic "C")) ]
    r.Evolution.syntactic.Evolution.removed_axioms;
  Alcotest.(check (list string)) "names added" [ "concept D" ]
    r.Evolution.syntactic.Evolution.added_names;
  Alcotest.(check (list string)) "names removed" [ "concept C" ]
    r.Evolution.syntactic.Evolution.removed_names

let test_semantic_gain_loss () =
  let prev = parse {|
    A [= B
    B [= C
  |} in
  let next = parse {|
    A [= B
    B [= C
    C [= D
  |} in
  let r = Evolution.diff ~prev ~next in
  (* gained: C [= D, B [= D, A [= D *)
  Alcotest.(check int) "three gained" 3
    (List.length r.Evolution.semantic.Evolution.gained);
  Alcotest.(check (list axiom)) "nothing lost" []
    r.Evolution.semantic.Evolution.lost;
  Alcotest.(check bool) "not conservative" false (Evolution.is_conservative r)

let test_refactoring_is_conservative () =
  (* swapping a direct axiom for a chain with a new *name* changes the
     vocabulary; a pure reformulation over the same names is detected as
     conservative *)
  let prev = parse {|
    A [= B
    A [= C
  |} in
  let next = parse {|
    A [= C
    A [= B
  |} in
  let r = Evolution.diff ~prev ~next in
  Alcotest.(check bool) "conservative" true (Evolution.is_conservative r);
  Alcotest.(check (list axiom)) "no syntactic change either" []
    r.Evolution.syntactic.Evolution.added_axioms

let test_strengthening_detected () =
  (* replacing A [= B by the chain A [= M [= B preserves A [= B but
     gains the M entailments *)
  let prev = parse {|
    concept M
    A [= B
  |} in
  let next = parse {|
    A [= M
    M [= B
  |} in
  let r = Evolution.diff ~prev ~next in
  Alcotest.(check bool) "A [= B kept" true
    (not
       (List.mem
          (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Atomic "B")))
          r.Evolution.semantic.Evolution.lost));
  Alcotest.(check bool) "gained A [= M" true
    (List.mem
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Atomic "M")))
       r.Evolution.semantic.Evolution.gained)

let test_newly_unsat () =
  let prev = parse {|
    A [= B
  |} in
  let next = parse {|
    A [= B
    A [= not B
  |} in
  let r = Evolution.diff ~prev ~next in
  Alcotest.(check (list string)) "A newly unsat" [ "A" ]
    r.Evolution.semantic.Evolution.newly_unsat;
  let back = Evolution.diff ~prev:next ~next:prev in
  Alcotest.(check (list string)) "A newly sat on revert" [ "A" ]
    back.Evolution.semantic.Evolution.newly_sat

let test_role_diff () =
  let prev = parse {|
    role p
    role q
    p [= q
  |} in
  let next = parse {|
    role p
    role q
    q [= p
  |} in
  let r = Evolution.diff ~prev ~next in
  Alcotest.(check bool) "lost p [= q" true
    (List.mem
       (Syntax.Role_incl (Syntax.Direct "p", Syntax.R_role (Syntax.Direct "q")))
       r.Evolution.semantic.Evolution.lost);
  Alcotest.(check bool) "gained q [= p" true
    (List.mem
       (Syntax.Role_incl (Syntax.Direct "q", Syntax.R_role (Syntax.Direct "p")))
       r.Evolution.semantic.Evolution.gained)

let prop_self_diff_empty =
  QCheck.Test.make ~count:80 ~name:"diff of a TBox with itself is empty"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      let t = Ontgen.Qgen.tbox_of_axioms axioms in
      let r = Evolution.diff ~prev:t ~next:t in
      Evolution.is_conservative r
      && r.Evolution.syntactic.Evolution.added_axioms = []
      && r.Evolution.syntactic.Evolution.removed_axioms = [])

let prop_diff_antisymmetric =
  QCheck.Test.make ~count:50 ~name:"gained/lost swap under direction swap"
    (QCheck.pair Ontgen.Qgen.arbitrary_tbox Ontgen.Qgen.arbitrary_tbox)
    (fun (a1, a2) ->
      let t1 = Ontgen.Qgen.tbox_of_axioms a1 in
      let t2 = Ontgen.Qgen.tbox_of_axioms a2 in
      let fwd = Evolution.diff ~prev:t1 ~next:t2 in
      let bwd = Evolution.diff ~prev:t2 ~next:t1 in
      List.sort compare fwd.Evolution.semantic.Evolution.gained
      = List.sort compare bwd.Evolution.semantic.Evolution.lost
      && List.sort compare fwd.Evolution.semantic.Evolution.lost
         = List.sort compare bwd.Evolution.semantic.Evolution.gained)

let () =
  Alcotest.run "evolution"
    [
      ( "diff",
        [
          Alcotest.test_case "syntactic" `Quick test_syntactic_diff;
          Alcotest.test_case "semantic gain/loss" `Quick test_semantic_gain_loss;
          Alcotest.test_case "conservative refactoring" `Quick
            test_refactoring_is_conservative;
          Alcotest.test_case "strengthening" `Quick test_strengthening_detected;
          Alcotest.test_case "newly unsat" `Quick test_newly_unsat;
          Alcotest.test_case "role diff" `Quick test_role_diff;
          QCheck_alcotest.to_alcotest prop_self_diff_empty;
          QCheck_alcotest.to_alcotest prop_diff_antisymmetric;
        ] );
    ]
