(* Tests for ontology approximation (Section 7): syntactic
   decomposition, semantic per-axiom approximation, soundness against
   the tableau, and the completeness relation between the two. *)

open Dllite
module O = Owlfrag.Osyntax
module Syntactic = Approx.Syntactic
module Semantic = Approx.Semantic

let axiom = Alcotest.testable Syntax.pp_axiom Syntax.equal_axiom

let has_axiom t ax = Tbox.mem ax t

(* ----------------------------- syntactic ----------------------------- *)

let test_syntactic_keeps_dllite () =
  let otbox =
    [
      O.Sub (O.Name "A", O.Name "B");
      O.Sub (O.Name "A", O.Some_ (O.Named "p", O.Top));
      O.Sub (O.Name "A", O.Some_ (O.Named "p", O.Name "B"));
      O.Role_sub (O.Named "p", O.Named "q");
    ]
  in
  let r = Syntactic.approximate otbox in
  Alcotest.(check int) "nothing dropped" 0 (List.length r.Syntactic.dropped);
  Alcotest.(check bool) "atomic" true
    (has_axiom r.Syntactic.tbox
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Atomic "B"))));
  Alcotest.(check bool) "qualified" true
    (has_axiom r.Syntactic.tbox
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_exists_qual (Syntax.Direct "p", "B"))));
  Alcotest.(check bool) "role" true
    (has_axiom r.Syntactic.tbox
       (Syntax.Role_incl (Syntax.Direct "p", Syntax.R_role (Syntax.Direct "q"))))

let test_syntactic_splits_conjunction () =
  let otbox = [ O.Sub (O.Name "A", O.And (O.Name "B", O.Name "C")) ] in
  let r = Syntactic.approximate otbox in
  Alcotest.(check int) "two axioms" 2 (Tbox.axiom_count r.Syntactic.tbox);
  Alcotest.(check int) "nothing dropped" 0 (List.length r.Syntactic.dropped)

let test_syntactic_splits_lhs_disjunction () =
  let otbox = [ O.Sub (O.Or (O.Name "A", O.Name "B"), O.Name "C") ] in
  let r = Syntactic.approximate otbox in
  Alcotest.(check bool) "A [= C" true
    (has_axiom r.Syntactic.tbox
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Atomic "C"))));
  Alcotest.(check bool) "B [= C" true
    (has_axiom r.Syntactic.tbox
       (Syntax.Concept_incl (Syntax.Atomic "B", Syntax.C_basic (Syntax.Atomic "C"))))

let test_syntactic_drops_beyond () =
  let otbox =
    [
      O.Sub (O.Name "A", O.Or (O.Name "B", O.Name "C"));   (* rhs disjunction *)
      O.Sub (O.Name "A", O.All (O.Named "p", O.Name "B")); (* universal rhs *)
    ]
  in
  let r = Syntactic.approximate otbox in
  Alcotest.(check int) "both dropped" 2 (List.length r.Syntactic.dropped);
  Alcotest.(check int) "nothing kept" 0 (Tbox.axiom_count r.Syntactic.tbox)

let test_syntactic_bottom () =
  let otbox = [ O.Sub (O.Name "A", O.Bot) ] in
  let r = Syntactic.approximate otbox in
  Alcotest.(check bool) "A [= not A" true
    (has_axiom r.Syntactic.tbox
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_neg (Syntax.Atomic "A"))))

(* ----------------------------- semantic ------------------------------ *)

let test_semantic_recovers_hidden_subsumption () =
  (* A ⊑ B ⊓ C is not DL-Lite syntax, but entails A ⊑ B and A ⊑ C *)
  let otbox = [ O.Sub (O.Name "A", O.And (O.Name "B", O.Name "C")) ] in
  let r = Semantic.approximate otbox in
  Alcotest.(check bool) "A [= B" true
    (has_axiom r.Semantic.tbox
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Atomic "B"))));
  Alcotest.(check bool) "A [= C" true
    (has_axiom r.Semantic.tbox
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Atomic "C"))))

let test_semantic_recovers_domain_from_forall () =
  (* ∃p.⊤ ⊑ ∀p.B is beyond DL-Lite, but together with nothing else it
     entails ∃p⁻ ⊑ B?  No — ∀p.B on the domain constrains successors:
     every p-pair's target is in B, i.e. ∃p⁻ ⊑ B.  The per-axiom
     semantic approximation must find that. *)
  let otbox = [ O.Sub (O.Some_ (O.Named "p", O.Top), O.All (O.Named "p", O.Name "B")) ] in
  let r = Semantic.approximate otbox in
  Alcotest.(check bool) "range axiom recovered" true
    (has_axiom r.Semantic.tbox
       (Syntax.Concept_incl
          (Syntax.Exists (Syntax.Inverse "p"), Syntax.C_basic (Syntax.Atomic "B"))))

let test_semantic_disjointness () =
  (* A ⊑ ¬(B ⊔ C) entails A ⊑ ¬B and A ⊑ ¬C *)
  let otbox = [ O.Sub (O.Name "A", O.Not (O.Or (O.Name "B", O.Name "C"))) ] in
  let r = Semantic.approximate otbox in
  Alcotest.(check bool) "A disjoint B" true
    (has_axiom r.Semantic.tbox
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_neg (Syntax.Atomic "B"))));
  Alcotest.(check bool) "A disjoint C" true
    (has_axiom r.Semantic.tbox
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_neg (Syntax.Atomic "C"))))

let test_semantic_per_axiom_vs_global () =
  (* interaction across axioms: A ⊑ D ⊔ B, D ⊑ B together entail A ⊑ B,
     which per-axiom approximation cannot see but Global does *)
  let otbox =
    [ O.Sub (O.Name "A", O.Or (O.Name "D", O.Name "B")); O.Sub (O.Name "D", O.Name "B") ]
  in
  let per_axiom = Semantic.approximate ~mode:Semantic.Per_axiom otbox in
  let global = Semantic.approximate ~mode:Semantic.Global otbox in
  let target =
    Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Atomic "B"))
  in
  Alcotest.(check bool) "per-axiom misses it" false
    (has_axiom per_axiom.Semantic.tbox target);
  Alcotest.(check bool) "global finds it" true (has_axiom global.Semantic.tbox target)

let test_recovery_metric () =
  let otbox = [ O.Sub (O.Name "A", O.And (O.Name "B", O.Name "C")) ] in
  let sem = Semantic.approximate otbox in
  let score = Semantic.entailment_recovery ~source:otbox ~approx:sem.Semantic.tbox in
  Alcotest.(check (float 0.0001)) "semantic recovers all" 1.0 score;
  let syn = Syntactic.approximate [ O.Sub (O.Name "A", O.Or (O.Name "B", O.Name "B")) ] in
  (* A ⊑ B ⊔ B ≡ A ⊑ B is dropped syntactically: recovery < 1 *)
  let score_syn =
    Semantic.entailment_recovery
      ~source:[ O.Sub (O.Name "A", O.Or (O.Name "B", O.Name "B")) ]
      ~approx:syn.Syntactic.tbox
  in
  Alcotest.(check bool) "syntactic loses entailments" true (score_syn < 1.0)

(* -------------------------- soundness (prop) ------------------------- *)

let gen_owl_tbox =
  QCheck.Gen.(
    let name = map (fun a -> O.Name a) (oneofl [ "A"; "B"; "C"; "D" ]) in
    let role = map (fun p -> O.Named p) (oneofl [ "p"; "q" ]) in
    let concept =
      sized_size (int_bound 2) @@ fix (fun self n ->
          if n = 0 then
            frequency [ (4, name); (1, return O.Top); (1, return O.Bot) ]
          else
            frequency
              [
                (3, name);
                (2, map2 (fun c d -> O.And (c, d)) (self (n - 1)) (self (n - 1)));
                (2, map2 (fun c d -> O.Or (c, d)) (self (n - 1)) (self (n - 1)));
                (1, map (fun c -> O.Not c) (self (n - 1)));
                (2, map2 (fun r c -> O.Some_ (r, c)) role (self (n - 1)));
                (1, map2 (fun r c -> O.All (r, c)) role (self (n - 1)));
              ])
    in
    list_size (int_range 1 5)
      (frequency
         [
           (5, map2 (fun c d -> O.Sub (c, d)) concept concept);
           (1, map2 (fun r s -> O.Role_sub (r, s)) role role);
         ]))

let arbitrary_owl_tbox =
  QCheck.make
    ~print:(fun t ->
      String.concat "\n" (List.map (Format.asprintf "%a" O.pp_axiom) t))
    gen_owl_tbox

let prop_semantic_sound =
  QCheck.Test.make ~count:60 ~name:"semantic approximation sound per axiom"
    arbitrary_owl_tbox (fun otbox ->
      (* a small budget keeps pathological random cases cheap: exhausted
         candidates are dropped, which never hurts soundness *)
      let r = Semantic.approximate ~budget:10_000 otbox in
      (* every emitted DL-Lite axiom must be entailed by the full source *)
      let oracle =
        {
          Owlfrag.Oracle.config = Owlfrag.Tableau.compile otbox;
          Owlfrag.Oracle.hierarchy = Owlfrag.Hierarchy.build otbox;
        }
      in
      List.for_all
        (fun ax ->
          match Owlfrag.Oracle.entails ~budget:50_000 oracle ax with
          | b -> b
          | exception Owlfrag.Tableau.Budget_exhausted -> true)
        (Tbox.axioms r.Semantic.tbox))

let prop_global_covers_per_axiom =
  QCheck.Test.make ~count:40 ~name:"global approximation covers per-axiom"
    arbitrary_owl_tbox (fun otbox ->
      let pa = Semantic.approximate ~budget:10_000 ~mode:Semantic.Per_axiom otbox in
      let g = Semantic.approximate ~budget:10_000 ~mode:Semantic.Global otbox in
      (* the coverage claim only holds when no candidate was dropped for
         running out of budget — those cases are skipped, not judged *)
      g.Semantic.budget_exhaustions > 0
      || pa.Semantic.budget_exhaustions > 0
      ||
      let d = Quonto.Deductive.compute g.Semantic.tbox in
      List.for_all (Quonto.Deductive.entails d) (Tbox.axioms pa.Semantic.tbox))

let () =
  ignore axiom;
  Alcotest.run "approx"
    [
      ( "syntactic",
        [
          Alcotest.test_case "keeps DL-Lite" `Quick test_syntactic_keeps_dllite;
          Alcotest.test_case "splits conjunction" `Quick test_syntactic_splits_conjunction;
          Alcotest.test_case "splits lhs disjunction" `Quick
            test_syntactic_splits_lhs_disjunction;
          Alcotest.test_case "drops beyond DL-Lite" `Quick test_syntactic_drops_beyond;
          Alcotest.test_case "bottom rhs" `Quick test_syntactic_bottom;
        ] );
      ( "semantic",
        [
          Alcotest.test_case "hidden subsumption" `Quick
            test_semantic_recovers_hidden_subsumption;
          Alcotest.test_case "range from forall" `Quick
            test_semantic_recovers_domain_from_forall;
          Alcotest.test_case "disjointness" `Quick test_semantic_disjointness;
          Alcotest.test_case "per-axiom vs global" `Quick test_semantic_per_axiom_vs_global;
          Alcotest.test_case "recovery metric" `Quick test_recovery_metric;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_semantic_sound; prop_global_covers_per_axiom ] );
    ]
