(* Tests for the OBDA data generator: determinism, shape, and semantic
   sanity of the generated instance. *)

module Datagen = Ontgen.Datagen
module Cq = Obda.Cq

let sorted = List.sort compare

let test_deterministic () =
  let a = Datagen.generate ~persons:200 ~courses:20 () in
  let b = Datagen.generate ~persons:200 ~courses:20 () in
  Alcotest.(check int) "same volume"
    (Obda.Database.size a.Datagen.database)
    (Obda.Database.size b.Datagen.database);
  Alcotest.(check (list (list string))) "same staff"
    (sorted (Obda.Database.rows a.Datagen.database "t_staff"))
    (sorted (Obda.Database.rows b.Datagen.database "t_staff"))

let test_shape () =
  let i = Datagen.generate ~persons:500 ~courses:50 () in
  let rows r = List.length (Obda.Database.rows i.Datagen.database r) in
  Alcotest.(check int) "staff cut" 50 (rows "t_staff");
  Alcotest.(check bool) "teaching assignments" true (rows "t_teach" > 0);
  (* enrollments: 450 students x 3 picks, some duplicate picks collapse *)
  Alcotest.(check bool) "enrollment volume" true
    (rows "t_enroll" > 1000 && rows "t_enroll" <= 1350);
  Alcotest.(check bool) "assists are rare" true (rows "t_assist" < 60)

let test_semantics () =
  let i = Datagen.generate ~persons:300 ~courses:30 () in
  let system = Datagen.engine i in
  Alcotest.(check bool) "consistent" true (Obda.Engine.consistent system);
  (* every professor is inferred a Person through the chain *)
  let answers name =
    let q = List.assoc name Datagen.queries in
    sorted (Obda.Engine.certain_answers system q)
  in
  let persons = answers "persons" in
  let faculty = answers "faculty" in
  Alcotest.(check bool) "faculty nonempty" true (faculty <> []);
  Alcotest.(check bool) "faculty are persons" true
    (List.for_all (fun t -> List.mem t persons) faculty);
  (* TA [= Student and assists [= attends: any assisting person is a
     student and therefore a person *)
  let tas =
    sorted
      (Obda.Engine.certain_answers system
         (Cq.make [ "x" ] [ Cq.atom (Obda.Vabox.concept_pred "TA") [ Cq.Var "x" ] ]))
  in
  Alcotest.(check bool) "TAs are persons" true
    (List.for_all (fun t -> List.mem t persons) tas)

let test_queries_run () =
  let i = Datagen.generate ~persons:120 ~courses:12 () in
  let system = Datagen.engine i in
  List.iter
    (fun (name, q) ->
      let answers = Obda.Engine.certain_answers system q in
      Alcotest.(check bool) (name ^ " evaluates") true (List.length answers >= 0))
    Datagen.queries

let () =
  Alcotest.run "datagen"
    [
      ( "instance",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "shape" `Quick test_shape;
          Alcotest.test_case "semantics" `Quick test_semantics;
          Alcotest.test_case "benchmark queries" `Quick test_queries_run;
        ] );
    ]
