test/test_evolution.mli:
