test/test_obda.ml: Abox Alcotest Dllite List Obda Ontgen Parser Printf QCheck QCheck_alcotest Tbox
