test/test_dllite.mli:
