test/test_graphical.mli:
