test/test_obda.mli:
