test/test_models.ml: Alcotest Format List Owlfrag Printf QCheck QCheck_alcotest String
