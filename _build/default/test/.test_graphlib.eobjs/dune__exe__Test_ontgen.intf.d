test/test_ontgen.mli:
