test/test_approx.ml: Alcotest Approx Dllite Format List Owlfrag QCheck QCheck_alcotest Quonto String Syntax Tbox
