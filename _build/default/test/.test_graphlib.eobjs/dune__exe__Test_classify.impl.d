test/test_classify.ml: Alcotest Dllite Graphlib List Ontgen Owlfrag Parser QCheck QCheck_alcotest Quonto Syntax
