test/test_taxonomy.mli:
