test/test_datagen.ml: Alcotest List Obda Ontgen
