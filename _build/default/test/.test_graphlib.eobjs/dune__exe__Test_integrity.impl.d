test/test_integrity.ml: Abox Alcotest Constraints Dllite List Obda Parser Syntax Tbox
