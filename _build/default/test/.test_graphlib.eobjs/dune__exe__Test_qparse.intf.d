test/test_qparse.mli:
