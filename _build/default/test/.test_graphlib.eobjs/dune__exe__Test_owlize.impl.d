test/test_owlize.ml: Alcotest Format Graphical List Owlfrag String
