test/test_baselines.ml: Alcotest Baselines Dllite List Ontgen Parser Printf QCheck QCheck_alcotest Quonto Syntax Tbox
