test/test_ontgen.ml: Alcotest Approx Array Dllite List Ontgen Quonto Signature Tbox
