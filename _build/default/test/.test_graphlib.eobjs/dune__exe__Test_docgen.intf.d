test/test_docgen.mli:
