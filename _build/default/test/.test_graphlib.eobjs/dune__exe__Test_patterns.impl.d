test/test_patterns.ml: Alcotest Dllite Graphical List Patterns Quonto Signature String Syntax Tbox
