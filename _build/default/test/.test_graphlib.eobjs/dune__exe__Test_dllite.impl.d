test/test_dllite.ml: Abox Alcotest Dllite Format List Ontgen Parser Printf QCheck QCheck_alcotest Signature String Syntax Tbox
