test/test_taxonomy.ml: Alcotest Array Dllite Graphlib List Ontgen Parser Printf QCheck QCheck_alcotest Quonto Signature String Syntax Tbox
