test/test_owl.mli:
