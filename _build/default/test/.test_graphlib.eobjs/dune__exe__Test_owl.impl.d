test/test_owl.ml: Alcotest Dllite List Owlfrag
