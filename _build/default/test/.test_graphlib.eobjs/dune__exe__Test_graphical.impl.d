test/test_graphical.ml: Alcotest Dllite Graphical List Ontgen Option Parser QCheck QCheck_alcotest Signature String Syntax Tbox
