test/test_qparse.ml: Alcotest Dllite List Obda Signature
