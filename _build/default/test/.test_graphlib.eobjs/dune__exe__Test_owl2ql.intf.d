test/test_owl2ql.mli:
