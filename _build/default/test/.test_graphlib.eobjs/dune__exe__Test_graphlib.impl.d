test/test_graphlib.ml: Alcotest Array Graphlib Int List Option Printf QCheck QCheck_alcotest String
