test/test_docgen.ml: Alcotest Dllite Docgen Parser String Tbox
