test/test_sql.ml: Alcotest Dllite List Obda QCheck QCheck_alcotest String
