test/test_evolution.ml: Alcotest Dllite Evolution List Ontgen Parser QCheck QCheck_alcotest Syntax
