test/test_owlize.mli:
