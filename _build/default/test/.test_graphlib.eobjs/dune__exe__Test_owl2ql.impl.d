test/test_owl2ql.ml: Alcotest Dllite List Ontgen Owl2ql Parser QCheck QCheck_alcotest String Syntax Tbox
