(* Tests for the ALCHI fragment: NNF, role hierarchy, and the tableau
   decision procedure. *)

module O = Owlfrag.Osyntax
module Hierarchy = Owlfrag.Hierarchy
module Tableau = Owlfrag.Tableau

let concept = Alcotest.testable O.pp_concept O.equal_concept

let sat ?(tbox = []) c = Tableau.satisfiable (Tableau.compile tbox) c
let subsumes ?(tbox = []) c d = Tableau.subsumes (Tableau.compile tbox) c d

(* -------------------------------- nnf -------------------------------- *)

let test_nnf () =
  Alcotest.check concept "double negation" (O.Name "A") (O.nnf (O.Not (O.Not (O.Name "A"))));
  Alcotest.check concept "de morgan and"
    (O.Or (O.Not (O.Name "A"), O.Not (O.Name "B")))
    (O.nnf (O.Not (O.And (O.Name "A", O.Name "B"))));
  Alcotest.check concept "neg exists"
    (O.All (O.Named "p", O.Not (O.Name "A")))
    (O.nnf (O.Not (O.Some_ (O.Named "p", O.Name "A"))));
  Alcotest.check concept "neg forall"
    (O.Some_ (O.Named "p", O.Not (O.Name "A")))
    (O.nnf (O.Not (O.All (O.Named "p", O.Name "A"))));
  Alcotest.check concept "neg top" O.Bot (O.nnf (O.Not O.Top))

(* ----------------------------- hierarchy ----------------------------- *)

let test_hierarchy () =
  let tbox =
    [
      O.Role_sub (O.Named "p", O.Named "q");
      O.Role_sub (O.Named "q", O.Named "r");
      O.Sub (O.Some_ (O.Named "p", O.Top), O.Name "A");
    ]
  in
  let h = Hierarchy.build tbox in
  Alcotest.(check bool) "transitive" true (Hierarchy.subsumes h (O.Named "p") (O.Named "r"));
  Alcotest.(check bool) "inverse lifted" true
    (Hierarchy.subsumes h (O.Inv "p") (O.Inv "r"));
  Alcotest.(check bool) "reflexive" true (Hierarchy.subsumes h (O.Named "p") (O.Named "p"));
  Alcotest.(check bool) "no reverse" false
    (Hierarchy.subsumes h (O.Named "r") (O.Named "p"))

let test_hierarchy_disjoint () =
  let tbox =
    [
      O.Role_sub (O.Named "p", O.Named "q");
      O.Role_disjoint (O.Named "q", O.Named "r");
    ]
  in
  let h = Hierarchy.build tbox in
  Alcotest.(check bool) "inherited clash" true (Hierarchy.clashing h (O.Named "p") (O.Named "r"));
  Alcotest.(check bool) "self not clashing" false
    (Hierarchy.clashing h (O.Named "p") (O.Named "p"))

(* ------------------------------ tableau ------------------------------ *)

let test_sat_basic () =
  Alcotest.(check bool) "name sat" true (sat (O.Name "A"));
  Alcotest.(check bool) "bot unsat" false (sat O.Bot);
  Alcotest.(check bool) "contradiction" false (sat (O.And (O.Name "A", O.Not (O.Name "A"))));
  Alcotest.(check bool) "or escapes clash" true
    (sat (O.And (O.Or (O.Name "A", O.Name "B"), O.Not (O.Name "A"))));
  Alcotest.(check bool) "exists sat" true (sat (O.Some_ (O.Named "p", O.Name "A")));
  Alcotest.(check bool) "exists bot unsat" false (sat (O.Some_ (O.Named "p", O.Bot)))

let test_sat_forall_interaction () =
  (* ∃p.A ⊓ ∀p.¬A is unsatisfiable *)
  Alcotest.(check bool) "exists vs forall" false
    (sat
       (O.And
          (O.Some_ (O.Named "p", O.Name "A"), O.All (O.Named "p", O.Not (O.Name "A")))));
  (* ∃p.A ⊓ ∀q.¬A is satisfiable (different roles) *)
  Alcotest.(check bool) "different roles" true
    (sat
       (O.And
          (O.Some_ (O.Named "p", O.Name "A"), O.All (O.Named "q", O.Not (O.Name "A")))))

let test_sat_role_hierarchy_interaction () =
  (* p ⊑ q: ∃p.A ⊓ ∀q.¬A is unsatisfiable *)
  let tbox = [ O.Role_sub (O.Named "p", O.Named "q") ] in
  Alcotest.(check bool) "forall over super-role" false
    (sat ~tbox
       (O.And
          (O.Some_ (O.Named "p", O.Name "A"), O.All (O.Named "q", O.Not (O.Name "A")))))

let test_sat_inverse_interaction () =
  (* A ⊓ ∃p.(∀p⁻.¬A) is unsatisfiable: the child's ∀p⁻ reaches back *)
  Alcotest.(check bool) "inverse forall to parent" false
    (sat
       (O.And
          (O.Name "A", O.Some_ (O.Named "p", O.All (O.Inv "p", O.Not (O.Name "A"))))))

let test_sat_tbox_cycle_blocking () =
  (* A ⊑ ∃p.A forces an infinite model; blocking must terminate and
     answer satisfiable *)
  let tbox = [ O.Sub (O.Name "A", O.Some_ (O.Named "p", O.Name "A")) ] in
  Alcotest.(check bool) "cyclic tbox sat" true (sat ~tbox (O.Name "A"))

let test_sat_tbox_unsat_name () =
  let tbox =
    [
      O.Sub (O.Name "A", O.Name "B");
      O.Sub (O.Name "A", O.Not (O.Name "B"));
    ]
  in
  Alcotest.(check bool) "unsat name" false (sat ~tbox (O.Name "A"));
  Alcotest.(check bool) "other name sat" true (sat ~tbox (O.Name "B"))

let test_subsumption () =
  let tbox =
    [
      O.Sub (O.Name "A", O.Name "B");
      O.Sub (O.Name "B", O.Name "C");
    ]
  in
  Alcotest.(check bool) "chain" true (subsumes ~tbox (O.Name "A") (O.Name "C"));
  Alcotest.(check bool) "no reverse" false (subsumes ~tbox (O.Name "C") (O.Name "A"));
  Alcotest.(check bool) "top" true (subsumes ~tbox (O.Name "A") O.Top)

let test_subsumption_domain () =
  (* ∃p ⊑ A (domain axiom, absorbed): ∃p.B ⊑ A *)
  let tbox = [ O.Sub (O.Some_ (O.Named "p", O.Top), O.Name "A") ] in
  Alcotest.(check bool) "domain absorption" true
    (subsumes ~tbox (O.Some_ (O.Named "p", O.Name "B")) (O.Name "A"))

let test_subsumption_qualified () =
  (* A ⊑ ∃p.B, B ⊑ C: A ⊑ ∃p.C *)
  let tbox =
    [
      O.Sub (O.Name "A", O.Some_ (O.Named "p", O.Name "B"));
      O.Sub (O.Name "B", O.Name "C");
    ]
  in
  Alcotest.(check bool) "qualified chain" true
    (subsumes ~tbox (O.Name "A") (O.Some_ (O.Named "p", O.Name "C")))

let test_equiv () =
  let tbox = [ O.Equiv (O.Name "A", O.Name "B") ] in
  Alcotest.(check bool) "equiv lr" true (subsumes ~tbox (O.Name "A") (O.Name "B"));
  Alcotest.(check bool) "equiv rl" true (subsumes ~tbox (O.Name "B") (O.Name "A"))

let test_role_disjoint_clash () =
  (* p ⊑ q, p ⊑ r, Disj(q, r): ∃p.⊤ is unsatisfiable *)
  let tbox =
    [
      O.Role_sub (O.Named "p", O.Named "q");
      O.Role_sub (O.Named "p", O.Named "r");
      O.Role_disjoint (O.Named "q", O.Named "r");
    ]
  in
  Alcotest.(check bool) "empty role" false (sat ~tbox (O.Some_ (O.Named "p", O.Top)));
  (* but a q-edge alone is fine *)
  Alcotest.(check bool) "q alone fine" true (sat ~tbox (O.Some_ (O.Named "q", O.Top)))

let test_budget () =
  let tbox =
    [ O.Sub (O.Top, O.Some_ (O.Named "p", O.Or (O.Name "A", O.Name "B"))) ]
  in
  let cfg = Tableau.compile tbox in
  match Tableau.satisfiable ~budget:5 cfg (O.Name "A") with
  | (_ : bool) -> Alcotest.fail "expected budget exhaustion"
  | exception Tableau.Budget_exhausted -> ()

(* ----------------------- pseudo-model caching ------------------------ *)

let test_is_deterministic () =
  (* DL-Lite embeddings are deterministic *)
  let dllite =
    Owlfrag.Embed.tbox
      (match Dllite.Parser.tbox_of_string {|
        role p
        A [= B
        A [= not C
        B [= exists p . C
      |} with
       | Ok t -> t
       | Error e -> Alcotest.failf "parse: %s" e)
  in
  Alcotest.(check bool) "dllite deterministic" true
    (Tableau.is_deterministic (Tableau.compile dllite));
  (* a disjunction on an absorbed right-hand side breaks determinism *)
  let with_or = [ O.Sub (O.Name "A", O.Or (O.Name "B", O.Name "C")) ] in
  Alcotest.(check bool) "or not deterministic" false
    (Tableau.is_deterministic (Tableau.compile with_or));
  (* and so does an internalized complex axiom *)
  let internalized = [ O.Sub (O.And (O.Name "A", O.Name "B"), O.Name "C") ] in
  Alcotest.(check bool) "internalized not deterministic" false
    (Tableau.is_deterministic (Tableau.compile internalized))

let test_root_completion () =
  let tbox =
    [
      O.Sub (O.Name "A", O.Name "B");
      O.Sub (O.Name "B", O.Name "C");
      O.Sub (O.Name "A", O.Some_ (O.Named "p", O.Top));
      O.Sub (O.Some_ (O.Named "p", O.Top), O.Name "D");
    ]
  in
  let cfg = Tableau.compile tbox in
  (match Tableau.root_completion cfg (O.Name "A") with
   | Some label ->
     List.iter
       (fun b ->
         Alcotest.(check bool) (b ^ " in completion") true
           (List.mem (O.Name b) label))
       [ "A"; "B"; "C"; "D" ];
     Alcotest.(check bool) "E not in completion" false (List.mem (O.Name "E") label)
   | None -> Alcotest.fail "A is satisfiable");
  (* unsatisfiable input returns None *)
  let bad = [ O.Sub (O.Name "X", O.Name "Y"); O.Sub (O.Name "X", O.Not (O.Name "Y")) ] in
  Alcotest.(check bool) "unsat gives None" true
    (Tableau.root_completion (Tableau.compile bad) (O.Name "X") = None)

(* -------------------------- DL-Lite oracle --------------------------- *)

module Syntax = Dllite.Syntax
module Oracle = Owlfrag.Oracle

let parse s =
  match Dllite.Parser.tbox_of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" e

let test_oracle_figure2 () =
  let t =
    parse
      {|
        role isPartOf
        County [= exists isPartOf . State
        State [= exists isPartOf^- . County
      |}
  in
  let o = Oracle.of_tbox t in
  Alcotest.(check bool) "county in domain" true
    (Oracle.subsumes o
       (Syntax.E_concept (Syntax.Atomic "County"))
       (Syntax.E_concept (Syntax.Exists (Syntax.Direct "isPartOf"))));
  Alcotest.(check bool) "entails figure-2 axiom" true
    (Oracle.entails o
       (Syntax.Concept_incl
          (Syntax.Atomic "County", Syntax.C_exists_qual (Syntax.Direct "isPartOf", "State"))));
  Alcotest.(check bool) "does not entail converse" false
    (Oracle.entails o
       (Syntax.Concept_incl
          (Syntax.Atomic "State", Syntax.C_basic (Syntax.Atomic "County"))))

let test_oracle_unsat () =
  let t = parse {|
    A [= B
    A [= not B
  |} in
  let o = Oracle.of_tbox t in
  Alcotest.(check bool) "A unsat" true
    (Oracle.is_unsat o (Syntax.E_concept (Syntax.Atomic "A")));
  Alcotest.(check bool) "B sat" false
    (Oracle.is_unsat o (Syntax.E_concept (Syntax.Atomic "B")));
  (* unsat concepts are subsumed by everything *)
  Alcotest.(check bool) "A [= B still" true
    (Oracle.subsumes o
       (Syntax.E_concept (Syntax.Atomic "A"))
       (Syntax.E_concept (Syntax.Atomic "B")))

let test_oracle_role_disjoint_components () =
  (* domains disjoint => roles disjoint *)
  let t = parse {|
    role p
    role q
    exists p [= A
    exists q [= not A
  |} in
  let o = Oracle.of_tbox t in
  Alcotest.(check bool) "roles disjoint via domains" true
    (Oracle.disjoint o (Syntax.E_role (Syntax.Direct "p")) (Syntax.E_role (Syntax.Direct "q")))

let () =
  Alcotest.run "owlfrag"
    [
      ("nnf", [ Alcotest.test_case "nnf" `Quick test_nnf ]);
      ( "hierarchy",
        [
          Alcotest.test_case "closure" `Quick test_hierarchy;
          Alcotest.test_case "disjointness" `Quick test_hierarchy_disjoint;
        ] );
      ( "tableau",
        [
          Alcotest.test_case "basic sat" `Quick test_sat_basic;
          Alcotest.test_case "forall interaction" `Quick test_sat_forall_interaction;
          Alcotest.test_case "role hierarchy" `Quick test_sat_role_hierarchy_interaction;
          Alcotest.test_case "inverse roles" `Quick test_sat_inverse_interaction;
          Alcotest.test_case "blocking" `Quick test_sat_tbox_cycle_blocking;
          Alcotest.test_case "unsat name" `Quick test_sat_tbox_unsat_name;
          Alcotest.test_case "subsumption" `Quick test_subsumption;
          Alcotest.test_case "domain absorption" `Quick test_subsumption_domain;
          Alcotest.test_case "qualified subsumption" `Quick test_subsumption_qualified;
          Alcotest.test_case "equivalence" `Quick test_equiv;
          Alcotest.test_case "role disjointness" `Quick test_role_disjoint_clash;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "determinism detection" `Quick test_is_deterministic;
          Alcotest.test_case "root completion" `Quick test_root_completion;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "figure 2" `Quick test_oracle_figure2;
          Alcotest.test_case "unsatisfiable names" `Quick test_oracle_unsat;
          Alcotest.test_case "role disjointness components" `Quick
            test_oracle_role_disjoint_components;
        ] );
    ]
